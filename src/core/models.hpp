// The coMtainer process models (§4.3) — the "IR" of the toolset.
//
// Three cooperating models describe an application image and the process
// that built it:
//  - BuildGraph: a DAG of data transformations. Nodes are files (sources,
//    objects, archives, shared libraries, executables) plus the structured
//    command that produced each derived node. The compilation model of a
//    compiler-produced node is its parsed GCC command line
//    (toolchain::CompileCommand); an archive node's compilation model is its
//    member list (its dependency edges).
//  - ImageModel: the structure of the final application image, every file
//    classified into one of five origins (base image / package manager /
//    build process / data / unknown), which guides system-side replacement.
//  - The compilation models, embedded in graph nodes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "support/error.hpp"
#include "toolchain/options.hpp"

namespace comt::core {

// ---------------------------------------------------------------------------
// Build graph
// ---------------------------------------------------------------------------

enum class NodeKind {
  source,      ///< leaf: a source or header file
  object,      ///< .o
  archive,     ///< .a
  shared_lib,  ///< .so
  executable,  ///< linked program
  data,        ///< leaf: non-code input consumed by a tool
};

const char* node_kind_name(NodeKind kind);
Result<NodeKind> node_kind_from_name(std::string_view name);

/// One node of the build graph.
struct GraphNode {
  int id = -1;
  NodeKind kind = NodeKind::source;
  std::string path;            ///< path inside the build container
  std::string content_digest;  ///< sha256 of the node's content when produced
  std::vector<int> deps;       ///< producing inputs (edges into this node)

  // Compilation model for derived nodes:
  std::optional<toolchain::CompileCommand> compile;  ///< compiler-produced
  std::vector<std::string> archive_argv;             ///< archiver-produced
  std::string toolchain_id;  ///< toolchain that ran the command
  std::string cwd;           ///< working directory of the command

  bool is_leaf() const { return !compile.has_value() && archive_argv.empty(); }

  json::Value to_json() const;
  static Result<GraphNode> from_json(const json::Value& value);
};

/// The build-graph model: a DAG over GraphNodes.
class BuildGraph {
 public:
  /// Adds a node, assigning its id. Returns the id.
  int add_node(GraphNode node);

  const GraphNode& node(int id) const;
  GraphNode& node(int id);
  std::size_t size() const { return nodes_.size(); }
  const std::vector<GraphNode>& nodes() const { return nodes_; }
  std::vector<GraphNode>& nodes() { return nodes_; }

  /// Most recent node whose path is `path` (paths can be overwritten).
  int find_by_path(std::string_view path) const;
  /// Most recent node with the given content digest.
  int find_by_digest(std::string_view digest) const;

  /// Ids in dependency order (leaves first). Fails on cycles.
  Result<std::vector<int>> topological_order() const;

  /// Nodes with no dependents (final build products).
  std::vector<int> roots() const;
  /// Transitive dependency closure of `id`, including `id`.
  std::vector<int> closure(int id) const;

  /// Graphviz rendering for inspection.
  std::string to_dot() const;

  json::Value to_json() const;
  static Result<BuildGraph> from_json(const json::Value& value);

 private:
  std::vector<GraphNode> nodes_;
};

// ---------------------------------------------------------------------------
// Image model
// ---------------------------------------------------------------------------

/// The five-way provenance classification of image files (§4.3, Fig. 8).
enum class FileOrigin {
  base_image,       ///< present identically in the dist stage's base image
  package_manager,  ///< owned by an installed package
  build_process,    ///< produced by the recorded build (matches a graph node)
  data,             ///< platform-independent data
  unknown,
};

const char* file_origin_name(FileOrigin origin);

struct ImageFileEntry {
  std::string path;
  FileOrigin origin = FileOrigin::unknown;
  std::string digest;
  std::uint64_t size = 0;
  std::string owner_package;  ///< for package_manager files
  int build_node = -1;        ///< graph node id for build_process files

  json::Value to_json() const;
  static Result<ImageFileEntry> from_json(const json::Value& value);
};

/// A runtime package dependency of the image.
struct RuntimePackage {
  std::string name;
  std::string version;
  std::string variant;  ///< "generic" / "optimized"

  json::Value to_json() const;
};

struct ImageModel {
  std::string image_tag;
  std::string architecture;
  std::vector<ImageFileEntry> files;
  std::vector<RuntimePackage> runtime_packages;
  std::vector<std::string> entrypoint;

  /// Counts per origin (for reporting and tests).
  std::map<FileOrigin, std::size_t> origin_histogram() const;

  json::Value to_json() const;
  static Result<ImageModel> from_json(const json::Value& value);
};

/// The full process-model bundle carried by a coMtainer extended image.
struct ProcessModels {
  BuildGraph graph;
  ImageModel image;
};

}  // namespace comt::core
