#include "transfer/codec.hpp"

#include <algorithm>

#include "store/wire.hpp"

namespace comt::transfer {
namespace {

// LZ token format (byte-aligned, self-delimiting):
//   op < 0x80  → literal run of op+1 bytes (1..128) follows;
//   op >= 0x80 → match of (op & 0x7F) + kMinMatch bytes at distance d, where
//                d is the following little-endian u16 (1..65535). Matches may
//                overlap their output (d < len), copied byte by byte.
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 127 + kMinMatch;
constexpr std::size_t kWindow = 65535;
constexpr std::size_t kHashBits = 15;

std::uint32_t hash4(const char* p) {
  std::uint32_t v = static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
                    static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
                    static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
                    static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
  return (v * 2654435761u) >> (32 - kHashBits);
}

class IdentityCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::identity; }
  std::string encode(std::string_view raw) const override { return std::string(raw); }
  Result<std::string> decode(std::string_view encoded, std::size_t raw_size) const override {
    if (encoded.size() != raw_size) {
      return make_error(Errc::corrupt, "identity codec: size mismatch");
    }
    return std::string(encoded);
  }
};

class LzCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::lz; }

  std::string encode(std::string_view raw) const override {
    std::string out;
    out.reserve(raw.size() / 2 + 16);
    const std::size_t n = raw.size();
    std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
    std::size_t i = 0;
    std::size_t literal_start = 0;
    auto flush_literals = [&](std::size_t end) {
      std::size_t pos = literal_start;
      while (pos < end) {
        const std::size_t run = std::min<std::size_t>(end - pos, 128);
        out.push_back(static_cast<char>(run - 1));
        out.append(raw.substr(pos, run));
        pos += run;
      }
    };
    while (i + kMinMatch <= n) {
      const std::uint32_t h = hash4(raw.data() + i);
      const std::int64_t candidate = head[h];
      head[h] = static_cast<std::int64_t>(i);
      std::size_t match_len = 0;
      if (candidate >= 0 && i - static_cast<std::size_t>(candidate) <= kWindow) {
        const char* a = raw.data() + candidate;
        const char* b = raw.data() + i;
        const std::size_t limit = std::min(n - i, kMaxMatch);
        std::size_t len = 0;
        while (len < limit && a[len] == b[len]) ++len;
        if (len >= kMinMatch) match_len = len;
      }
      if (match_len == 0) {
        ++i;
        continue;
      }
      flush_literals(i);
      const std::uint16_t distance =
          static_cast<std::uint16_t>(i - static_cast<std::size_t>(candidate));
      out.push_back(static_cast<char>(0x80 | (match_len - kMinMatch)));
      out.push_back(static_cast<char>(distance & 0xFF));
      out.push_back(static_cast<char>(distance >> 8));
      // Seed the table through the matched region so back-to-back repeats of
      // the same data keep finding long matches (capped by kMaxMatch anyway).
      const std::size_t seed_end = std::min(i + match_len, n >= kMinMatch ? n - kMinMatch + 1 : 0);
      for (std::size_t k = i + 1; k < seed_end; ++k) {
        head[hash4(raw.data() + k)] = static_cast<std::int64_t>(k);
      }
      i += match_len;
      literal_start = i;
    }
    flush_literals(n);
    return out;
  }

  Result<std::string> decode(std::string_view encoded, std::size_t raw_size) const override {
    std::string out;
    out.reserve(raw_size);
    std::size_t pos = 0;
    while (pos < encoded.size()) {
      const unsigned char op = static_cast<unsigned char>(encoded[pos++]);
      if ((op & 0x80) == 0) {
        const std::size_t run = std::size_t{op} + 1;
        if (pos + run > encoded.size()) {
          return make_error(Errc::corrupt, "lz codec: truncated literal run");
        }
        out.append(encoded.substr(pos, run));
        pos += run;
        continue;
      }
      const std::size_t len = std::size_t{op & 0x7Fu} + kMinMatch;
      if (pos + 2 > encoded.size()) {
        return make_error(Errc::corrupt, "lz codec: truncated match token");
      }
      const std::size_t distance =
          static_cast<std::size_t>(static_cast<unsigned char>(encoded[pos])) |
          static_cast<std::size_t>(static_cast<unsigned char>(encoded[pos + 1])) << 8;
      pos += 2;
      if (distance == 0 || distance > out.size()) {
        return make_error(Errc::corrupt, "lz codec: match distance out of range");
      }
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[out.size() - distance]);  // overlap-safe byte copy
      }
    }
    if (out.size() != raw_size) {
      return make_error(Errc::corrupt, "lz codec: decoded size mismatch");
    }
    return out;
  }
};

const IdentityCodec kIdentity;
const LzCodec kLz;

}  // namespace

const char* codec_name(CodecId id) {
  switch (id) {
    case CodecId::identity: return "identity";
    case CodecId::lz: return "lz";
  }
  return "unknown";
}

const Codec* find_codec(CodecId id) {
  switch (id) {
    case CodecId::identity: return &kIdentity;
    case CodecId::lz: return &kLz;
  }
  return nullptr;
}

std::vector<CodecId> supported_codecs() { return {CodecId::lz, CodecId::identity}; }

Result<CodecId> negotiate(const std::vector<CodecId>& preferred,
                          const std::vector<CodecId>& remote) {
  for (CodecId want : preferred) {
    if (std::find(remote.begin(), remote.end(), want) != remote.end()) return want;
  }
  return make_error(Errc::unsupported, "transfer: no common codec with destination");
}

std::string frame_chunk(CodecId codec, std::string_view raw) {
  const Codec* impl = find_codec(codec);
  std::string encoded = impl != nullptr ? impl->encode(raw) : std::string(raw);
  if (impl == nullptr || encoded.size() >= raw.size()) {
    codec = CodecId::identity;
    encoded = std::string(raw);
  }
  std::string out;
  out.reserve(13 + encoded.size());
  out.push_back(static_cast<char>(codec));
  store::wire::put_u32(out, static_cast<std::uint32_t>(raw.size()));
  store::wire::put_u64(out, store::wire::fnv1a64(raw));
  out.append(encoded);
  return out;
}

Result<std::string> unframe_chunk(std::string_view what, std::string_view framed) {
  if (framed.size() < 13) {
    return make_error(Errc::corrupt, "chunk frame torn: " + std::string(what));
  }
  const CodecId codec = static_cast<CodecId>(static_cast<unsigned char>(framed[0]));
  store::wire::Reader header{framed.substr(1, 12)};
  const std::uint32_t raw_size = header.u32();
  const std::uint64_t checksum = header.u64();
  const Codec* impl = find_codec(codec);
  if (impl == nullptr) {
    return make_error(Errc::unsupported, "chunk frame: unknown codec id " +
                                             std::to_string(static_cast<unsigned>(codec)) +
                                             " for " + std::string(what));
  }
  auto raw = impl->decode(framed.substr(13), raw_size);
  if (!raw.ok()) {
    return make_error(Errc::corrupt,
                      "chunk decode failed for " + std::string(what) + ": " +
                          raw.error().message);
  }
  if (store::wire::fnv1a64(raw.value()) != checksum) {
    return make_error(Errc::corrupt, "chunk checksum mismatch: " + std::string(what));
  }
  return raw;
}

std::string serialize_codec_list(const std::vector<CodecId>& codecs) {
  std::string out;
  store::wire::put_u32(out, static_cast<std::uint32_t>(codecs.size()));
  for (CodecId id : codecs) out.push_back(static_cast<char>(id));
  store::wire::put_u64(out, store::wire::fnv1a64(out));
  return out;
}

std::vector<CodecId> parse_codec_list(std::string_view bytes) {
  if (bytes.size() < 12) return {};
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  store::wire::Reader trailer{bytes.substr(bytes.size() - 8)};
  if (store::wire::fnv1a64(body) != trailer.u64()) return {};
  store::wire::Reader reader{body};
  const std::uint32_t count = reader.u32();
  if (count != body.size() - 4) return {};
  std::vector<CodecId> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(static_cast<CodecId>(reader.u8()));
  }
  return reader.ok ? out : std::vector<CodecId>{};
}

}  // namespace comt::transfer
