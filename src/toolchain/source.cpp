#include "toolchain/source.hpp"

#include <charconv>

#include "support/strings.hpp"

namespace comt::toolchain {
namespace {

Result<double> parse_double(std::string_view text, std::string_view context) {
  double value = 0;
  auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size()) {
    return make_error(Errc::invalid_argument,
                      "bad number '" + std::string(text) + "' in " + std::string(context));
  }
  return value;
}

/// Parses one "@comt-kernel key=value ..." annotation body.
Result<KernelTrait> parse_kernel(std::string_view body, int line) {
  KernelTrait kernel;
  for (const std::string& field : split_whitespace(body)) {
    std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return make_error(Errc::invalid_argument, "line " + std::to_string(line) +
                                                    ": kernel field without '=': " + field);
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    auto context = "@comt-kernel line " + std::to_string(line);
    if (key == "name") {
      kernel.name = value;
    } else if (key == "lib") {
      // lib=blas:0.30 — library name and the fraction spent inside it.
      std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        return make_error(Errc::invalid_argument, context + ": lib wants NAME:FRACTION");
      }
      kernel.lib = value.substr(0, colon);
      COMT_TRY(kernel.frac_lib, parse_double(value.substr(colon + 1), context));
    } else if (key == "work") {
      COMT_TRY(kernel.work, parse_double(value, context));
    } else if (key == "vec") {
      COMT_TRY(kernel.frac_vec, parse_double(value, context));
    } else if (key == "mem") {
      COMT_TRY(kernel.frac_mem, parse_double(value, context));
    } else if (key == "call") {
      COMT_TRY(kernel.frac_call, parse_double(value, context));
    } else if (key == "branch") {
      COMT_TRY(kernel.frac_branch, parse_double(value, context));
    } else if (key == "comm") {
      COMT_TRY(kernel.frac_comm, parse_double(value, context));
    } else if (key == "aggr") {
      COMT_TRY(kernel.aggr_response, parse_double(value, context));
    } else if (key == "lto") {
      COMT_TRY(kernel.lto_response, parse_double(value, context));
    } else if (key == "pgo") {
      COMT_TRY(kernel.pgo_response, parse_double(value, context));
    } else {
      return make_error(Errc::invalid_argument, context + ": unknown field " + key);
    }
  }
  if (kernel.name.empty()) {
    return make_error(Errc::invalid_argument,
                      "line " + std::to_string(line) + ": kernel without a name");
  }
  double fractions = kernel.frac_vec + kernel.frac_mem + kernel.frac_call +
                     kernel.frac_branch + kernel.frac_lib;
  if (fractions > 1.0 + 1e-9) {
    return make_error(Errc::invalid_argument,
                      "line " + std::to_string(line) + ": kernel '" + kernel.name +
                          "' fractions sum to " + std::to_string(fractions) + " > 1");
  }
  if (kernel.work < 0) {
    return make_error(Errc::invalid_argument,
                      "line " + std::to_string(line) + ": negative work");
  }
  return kernel;
}

}  // namespace

Result<SourceInfo> analyze_source(std::string_view content) {
  SourceInfo info;
  int line_number = 0;
  for (const std::string& raw_line : split(content, '\n')) {
    ++line_number;
    std::string_view line = trim(raw_line);
    if (std::size_t pos = line.find("@comt-kernel"); pos != std::string_view::npos) {
      COMT_TRY(KernelTrait kernel,
               parse_kernel(line.substr(pos + std::string_view("@comt-kernel").size()),
                            line_number));
      info.kernels.push_back(std::move(kernel));
      continue;
    }
    if (std::size_t pos = line.find("@comt-isa"); pos != std::string_view::npos) {
      for (const std::string& isa :
           split_whitespace(line.substr(pos + std::string_view("@comt-isa").size()))) {
        info.isa_specific.push_back(isa);
      }
      continue;
    }
    if (starts_with(line, "#include")) {
      std::string_view rest = trim(line.substr(8));
      if (rest.size() >= 2 && rest.front() == '"') {
        std::size_t close = rest.find('"', 1);
        if (close != std::string_view::npos) {
          info.includes.emplace_back(rest.substr(1, close - 1));
        }
      } else if (contains(rest, "mpi.h")) {
        info.uses_mpi = true;
      }
    }
  }
  info.line_count = line_number;
  return info;
}

std::string generate_source(const SourceGenSpec& spec) {
  std::string out;
  out += "// " + spec.unit_name + " — synthetic translation unit (comtainer corpus)\n";
  if (spec.uses_mpi) out += "#include <mpi.h>\n";
  out += "#include <cstddef>\n";
  for (const std::string& include : spec.includes) {
    out += "#include \"" + include + "\"\n";
  }
  out += "\n";
  for (const std::string& isa : spec.isa_specific) {
    out += "// @comt-isa " + isa + "\n";
    out += "#if defined(__" + isa + "__)\n";
    out += "static inline void " + isa + "_tuned_path() { asm volatile(\"nop\"); }\n";
    out += "#endif\n\n";
  }
  char buffer[64];
  for (const KernelTrait& kernel : spec.kernels) {
    out += "// @comt-kernel name=" + kernel.name;
    auto field = [&](const char* key, double value) {
      if (value != 0) {
        std::snprintf(buffer, sizeof buffer, " %s=%g", key, value);
        out += buffer;
      }
    };
    field("work", kernel.work);
    field("vec", kernel.frac_vec);
    field("mem", kernel.frac_mem);
    field("call", kernel.frac_call);
    field("branch", kernel.frac_branch);
    if (!kernel.lib.empty()) {
      std::snprintf(buffer, sizeof buffer, " lib=%s:%g", kernel.lib.c_str(), kernel.frac_lib);
      out += buffer;
    }
    field("comm", kernel.frac_comm);
    field("aggr", kernel.aggr_response);
    field("lto", kernel.lto_response);
    field("pgo", kernel.pgo_response);
    out += "\n";
    out += "void " + kernel.name + "(double* field, std::size_t n) {\n";
    out += "  for (std::size_t i = 1; i + 1 < n; ++i) {\n";
    out += "    field[i] = 0.5 * (field[i - 1] + field[i + 1]);\n";
    out += "  }\n";
    out += "}\n\n";
  }
  // Deterministic filler so corpus file sizes track the paper's Table 2/3
  // line counts without carrying meaningless annotations.
  for (int i = 0; i < spec.filler_lines; ++i) {
    std::snprintf(buffer, sizeof buffer, "static const int k_%s_%d = %d;\n",
                  spec.unit_name.c_str(), i, i * 7 + 1);
    out += buffer;
  }
  return out;
}

std::string obfuscate_source(std::string_view content) {
  std::string out;
  int counter = 0;
  for (const std::string& line : split(content, '\n')) {
    std::string_view trimmed = trim(line);
    // Semantic lines survive: the simulated compiler (and a real rebuild's
    // preprocessor) must see the same program structure.
    if (contains(trimmed, "@comt-kernel") || contains(trimmed, "@comt-isa") ||
        starts_with(trimmed, "#include")) {
      out += line;
      out += '\n';
      continue;
    }
    if (trimmed.empty()) {
      out += '\n';
      continue;
    }
    // Everything else becomes an opaque token of comparable length, so the
    // cached file leaks neither identifiers nor logic but keeps its size
    // profile (Table 3 stays meaningful for obfuscated caches).
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "/*__o%04x__*/", counter++);
    std::string replaced(buffer);
    if (replaced.size() < line.size()) {
      replaced += std::string(line.size() - replaced.size(), '~');
    }
    out += replaced;
    out += '\n';
  }
  if (!content.empty() && content.back() != '\n' && !out.empty()) out.pop_back();
  return out;
}

}  // namespace comt::toolchain
