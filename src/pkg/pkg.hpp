// Package-manager substrate (dpkg/apt analogue).
//
// coMtainer's image model classifies files by provenance ("from the package
// manager" is one of the five classes) and its `libo` adapter replaces
// generic packages with system-optimized counterparts. Both need a real
// package database: versioned packages with dependencies, owned files, a
// per-image installed-status database persisted inside the container
// filesystem (dpkg-style), and per-system repositories carrying optimized
// variants.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "vfs/vfs.hpp"

namespace comt::pkg {

/// Build quality of a package. `generic` is what mainstream base images ship;
/// `optimized` is a system-vendor build tuned for specific hardware.
enum class Variant { generic, optimized };

const char* variant_name(Variant variant);

/// One file shipped by a package.
struct PackageFile {
  std::string path;          ///< absolute install path
  std::string content;
  std::uint32_t mode = 0644;
};

/// A package as it exists in a repository.
struct Package {
  std::string name;
  std::string version;
  std::string architecture = "amd64";  ///< "amd64", "arm64" or "all"
  Variant variant = Variant::generic;
  std::vector<std::string> depends;    ///< dependency package names
  std::vector<std::string> provides;   ///< virtual names this satisfies
  std::string section = "libs";
  std::string description;
  /// Free-form attributes consumed by other subsystems. Known keys:
  ///  "libspeed" — throughput multiplier for library-bound kernel time
  ///  "fabric"   — interconnect class an MPI package drives ("tcp", "hsn")
  ///  "march"    — ISA level a toolchain package targets
  std::map<std::string, std::string> attributes;
  std::vector<PackageFile> files;

  std::uint64_t installed_size() const;

  /// Attribute accessor with default (e.g. attribute_double("libspeed", 1.0)).
  double attribute_double(std::string_view key, double fallback) const;
  std::string attribute(std::string_view key, std::string fallback = "") const;
};

/// A set of packages available for installation; at most one version of a
/// name per repository (matching an apt snapshot). Virtual `provides` names
/// resolve to their single provider.
class Repository {
 public:
  /// Adds a package. Fails on duplicate name.
  Status add(Package package);

  /// Looks up by real name, then by provided virtual name.
  const Package* find(std::string_view name) const;

  std::vector<std::string> package_names() const;
  std::size_t size() const { return packages_.size(); }

 private:
  std::map<std::string, Package> packages_;
  std::map<std::string, std::string> provides_;  // virtual -> provider
};

/// Dependency resolution: returns an install order (dependencies before
/// dependents) covering `roots` and their transitive closure, skipping names
/// in `already_installed`. Fails on unknown packages and dependency cycles.
Result<std::vector<const Package*>> resolve(
    const Repository& repo, const std::vector<std::string>& roots,
    const std::vector<std::string>& already_installed = {});

/// Summary of one installed package, as recorded in the status database.
struct InstalledPackage {
  std::string name;
  std::string version;
  std::string architecture;
  Variant variant = Variant::generic;
  std::vector<std::string> depends;
  std::string section;
  std::map<std::string, std::string> attributes;
  std::vector<std::string> files;  ///< owned paths
};

/// Path of the dpkg-style status database inside a container filesystem.
inline constexpr std::string_view kStatusPath = "/var/lib/dpkg/status";
/// Path of the rpm-style database (RPM-based distros; §4.6 notes the
/// approach "is equally applicable to other package managers, such as RPM").
inline constexpr std::string_view kRpmStatusPath = "/var/lib/rpm/Packages.list";

/// On-disk dialect of the per-image package database.
enum class PackageFormat { deb, rpm };

/// The per-image installed-package database. Mirrors dpkg (or rpm): a status
/// file with one stanza per package, plus owned-file lists. All mutations
/// write through to the filesystem so the database is always reconstructible
/// from the image alone — that is what lets coMtainer's front-end parse
/// "dpkg/apt data inside the image" (§4.5).
class Database {
 public:
  /// Parses whichever database the image carries: /var/lib/dpkg/status or
  /// /var/lib/rpm/Packages.list (empty deb-format database when neither
  /// exists). The detected format is kept for write-through persistence.
  static Result<Database> load(const vfs::Filesystem& fs);

  PackageFormat format() const { return format_; }
  void set_format(PackageFormat format) { format_ = format; }

  /// Installs `package`: writes its files, records the stanza and file list.
  /// Fails if a different package already owns one of the paths.
  Status install(vfs::Filesystem& fs, const Package& package);

  /// Removes an installed package: deletes its owned files and its records.
  Status remove(vfs::Filesystem& fs, std::string_view name);

  bool installed(std::string_view name) const;
  const InstalledPackage* find(std::string_view name) const;

  /// Name of the package owning `path`, or "" when unowned.
  std::string owner_of(std::string_view path) const;

  std::vector<std::string> installed_names() const;
  std::size_t size() const { return installed_.size(); }

 private:
  Status persist(vfs::Filesystem& fs) const;

  PackageFormat format_ = PackageFormat::deb;
  std::map<std::string, InstalledPackage> installed_;
  std::map<std::string, std::string> owners_;  // path -> package name
};

}  // namespace comt::pkg
