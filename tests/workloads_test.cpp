#include <gtest/gtest.h>

#include "dockerfile/dockerfile.hpp"
#include "toolchain/source.hpp"
#include "toolchain/toolchains.hpp"
#include "workloads/corpus.hpp"
#include "workloads/environment.hpp"

namespace comt::workloads {
namespace {

TEST(EnvironmentTest, FillerSizing) {
  EXPECT_EQ(filler(2.0, "x").size(), 2 * kSimBytesPerMiB);
  EXPECT_TRUE(filler(0, "x").empty());
  EXPECT_TRUE(filler(-1, "x").empty());
  EXPECT_DOUBLE_EQ(to_sim_mib(3 * kSimBytesPerMiB), 3.0);
}

TEST(EnvironmentTest, ReposCarryTheStack) {
  const pkg::Repository& distro = ubuntu_repo("amd64");
  for (const char* name : {"gcc", "build-essential", "clang", "mpich", "libm",
                           "libblas", "libfftw", "libscalapack", "libelpa", "libxc"}) {
    EXPECT_NE(distro.find(name), nullptr) << name;
  }
  // All generic.
  EXPECT_EQ(distro.find("libblas")->variant, pkg::Variant::generic);
  EXPECT_DOUBLE_EQ(distro.find("libblas")->attribute_double("libspeed", 0), 1.0);
  // Virtual provides.
  EXPECT_EQ(distro.find("libmpi")->name, "mpich");
}

TEST(EnvironmentTest, SystemReposAreOptimized) {
  const pkg::Repository& x86 = system_repo(sysmodel::SystemProfile::x86_cluster());
  EXPECT_EQ(x86.find("libblas")->variant, pkg::Variant::optimized);
  EXPECT_GT(x86.find("libblas")->attribute_double("libspeed", 0), 1.5);
  EXPECT_NE(x86.find("system-toolchain"), nullptr);
  EXPECT_EQ(x86.find("mpich")->attribute("fabric"), "hsn");
  const pkg::Repository& arm = system_repo(sysmodel::SystemProfile::aarch64_cluster());
  EXPECT_EQ(arm.find("mpich")->attribute("fabric"), "glex");
}

TEST(EnvironmentTest, UserImagesInstall) {
  oci::Layout layout;
  ASSERT_TRUE(install_user_images(layout, "amd64").ok());
  for (const std::string& tag :
       {ubuntu_tag("amd64"), env_tag("amd64"), base_tag("amd64")}) {
    auto image = layout.find_image(tag);
    ASSERT_TRUE(image.ok()) << tag;
    EXPECT_EQ(image.value().config.architecture, "amd64");
  }
  // Env image: toolchain preinstalled, hijack label set.
  auto env = layout.find_image(env_tag("amd64"));
  auto rootfs = layout.flatten(env.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_TRUE(rootfs.value().is_regular("/usr/bin/gcc"));
  EXPECT_TRUE(rootfs.value().is_regular("/usr/bin/ar"));
  EXPECT_EQ(env.value().config.config.labels.count("comtainer.hijack"), 1u);
  // Base image is runtime-only: no toolchain.
  auto base = layout.find_image(base_tag("amd64"));
  auto base_rootfs = layout.flatten(base.value());
  EXPECT_FALSE(base_rootfs.value().exists("/usr/bin/gcc"));
}

TEST(EnvironmentTest, SystemImagesInstall) {
  oci::Layout layout;
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  ASSERT_TRUE(install_system_images(layout, system).ok());
  auto sysenv = layout.find_image(sysenv_tag(system));
  ASSERT_TRUE(sysenv.ok());
  auto rootfs = layout.flatten(sysenv.value());
  ASSERT_TRUE(rootfs.ok());
  // Both toolchains co-exist: generic at /usr/bin, vendor under /opt/system.
  EXPECT_EQ(toolchain::parse_toolchain_stub(
                rootfs.value().read_file("/usr/bin/gcc").value()),
            "gnu-generic");
  EXPECT_EQ(toolchain::parse_toolchain_stub(
                rootfs.value().read_file("/opt/system/bin/gcc").value()),
            "vendor-x86");
  // The optimized library stack is present.
  EXPECT_TRUE(rootfs.value().is_regular("/usr/lib/libblas.so"));
  auto db = pkg::Database::load(rootfs.value());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().find("libblas")->variant, pkg::Variant::optimized);
}

TEST(EnvironmentTest, BaseImageSizesMatchTable3) {
  oci::Layout layout;
  ASSERT_TRUE(install_user_images(layout, "amd64").ok());
  ASSERT_TRUE(install_user_images(layout, "arm64").ok());
  auto x86 = layout.find_image(ubuntu_tag("amd64"));
  auto arm = layout.find_image(ubuntu_tag("arm64"));
  double x86_mib = to_sim_mib(x86.value().manifest.layers[0].size);
  double arm_mib = to_sim_mib(arm.value().manifest.layers[0].size);
  // Table 3: small apps' images ~170 MiB (x86) / ~95 MiB (arm); the base
  // accounts for almost all of it.
  EXPECT_NEAR(x86_mib, 165, 20);
  EXPECT_NEAR(arm_mib, 92, 15);
  EXPECT_GT(x86_mib, arm_mib);  // "x86-64 has a more bloated software stack"
}

TEST(CorpusTest, MatchesTable2Inventory) {
  const auto& apps = corpus();
  EXPECT_EQ(apps.size(), 11u);  // 9 benchmarks + lammps + openmx
  int workload_rows = 0;
  for (const AppSpec& app : apps) workload_rows += static_cast<int>(app.inputs.size());
  EXPECT_EQ(workload_rows, 18);
  ASSERT_NE(find_app("lammps"), nullptr);
  EXPECT_EQ(find_app("lammps")->inputs.size(), 5u);
  EXPECT_EQ(find_app("openmx")->inputs.size(), 4u);
  EXPECT_EQ(find_app("nope"), nullptr);
  EXPECT_EQ(find_app("lammps")->paper_loc, 2273423);
}

TEST(CorpusTest, KernelFractionsAreValid) {
  for (const AppSpec& app : corpus()) {
    for (const toolchain::SourceGenSpec& unit : app.units) {
      for (const toolchain::KernelTrait& kernel : unit.kernels) {
        double sum = kernel.frac_vec + kernel.frac_mem + kernel.frac_call +
                     kernel.frac_branch + kernel.frac_lib;
        EXPECT_LE(sum, 1.0 + 1e-9) << app.name << "/" << kernel.name;
        EXPECT_GT(kernel.work, 0) << app.name << "/" << kernel.name;
        if (!kernel.lib.empty()) {
          // Library-calling kernels must be linkable: the app links that lib.
          bool linked = false;
          for (const std::string& lib : app.link_libraries) linked |= lib == kernel.lib;
          EXPECT_TRUE(linked) << app.name << " kernel " << kernel.name
                              << " calls unlinked lib " << kernel.lib;
        }
      }
    }
  }
}

TEST(CorpusTest, ContextMatchesUnits) {
  const AppSpec* app = find_app("lammps");
  vfs::Filesystem context = build_context(*app);
  EXPECT_TRUE(context.is_regular("/src/common.h"));
  for (const toolchain::SourceGenSpec& unit : app->units) {
    EXPECT_TRUE(context.is_regular("/src/" + unit.unit_name + ".cc")) << unit.unit_name;
  }
}

TEST(CorpusTest, GeneratedSourcesReparse) {
  for (const AppSpec& app : corpus()) {
    for (const toolchain::SourceGenSpec& unit : app.units) {
      auto info = toolchain::analyze_source(toolchain::generate_source(unit));
      ASSERT_TRUE(info.ok()) << app.name << "/" << unit.unit_name;
      EXPECT_EQ(info.value().kernels.size(), unit.kernels.size());
    }
  }
}

TEST(CorpusTest, DockerfilesParse) {
  for (const AppSpec& app : corpus()) {
    for (const char* arch : {"amd64", "arm64"}) {
      for (bool comt : {false, true}) {
        auto file = dockerfile::parse(dockerfile_text(app, arch, comt));
        ASSERT_TRUE(file.ok()) << app.name << " " << arch;
        EXPECT_EQ(file.value().stages.size(), 2u);
        EXPECT_EQ(file.value().stages[0].name, "build");
        EXPECT_EQ(file.value().stages[1].name, "dist");
      }
    }
    EXPECT_TRUE(dockerfile::parse(dockerfile_cross_comt(app, "amd64")).ok());
    EXPECT_TRUE(dockerfile::parse(dockerfile_xbuild(app, "amd64", "arm64")).ok());
  }
}

TEST(CorpusTest, CrossScriptIsSmallChange) {
  for (const AppSpec& app : corpus()) {
    std::string original = dockerfile_text(app, "amd64", true);
    auto [comt_added, comt_deleted] =
        dockerfile::line_diff(original, dockerfile_cross_comt(app, "amd64"));
    auto [xb_added, xb_deleted] =
        dockerfile::line_diff(original, dockerfile_xbuild(app, "amd64", "arm64"));
    EXPECT_LE(comt_added + comt_deleted, 10) << app.name;
    EXPECT_GE(xb_added + xb_deleted, 20) << app.name;
  }
}

TEST(CorpusTest, WorkloadInputNames) {
  const AppSpec* lulesh = find_app("lulesh");
  EXPECT_EQ(lulesh->inputs.front().display_name("lulesh"), "lulesh");
  const AppSpec* lammps = find_app("lammps");
  EXPECT_EQ(lammps->inputs.front().display_name("lammps"), "lammps.chain");
  sysmodel::RunRequest request = lammps->inputs.front().run_request(16);
  EXPECT_EQ(request.nodes, 16);
  EXPECT_GT(request.kernel_weight.at("bond_chain"), 1.0);
}

TEST(CorpusTest, IsaLockedAppsAreTheBigThree) {
  std::vector<std::string> locked;
  for (const AppSpec& app : corpus()) {
    if (app.isa_locked) locked.push_back(app.name);
  }
  EXPECT_EQ(locked, (std::vector<std::string>{"hpl", "lammps", "openmx"}));
}

TEST(CorpusTest, CorpusLocIsPositiveAndOrdered) {
  // lammps and openmx are by far the largest corpora, mirroring Table 2/3.
  int lulesh_loc = find_app("lulesh")->corpus_loc();
  int lammps_loc = find_app("lammps")->corpus_loc();
  int openmx_loc = find_app("openmx")->corpus_loc();
  EXPECT_GT(lulesh_loc, 50);
  EXPECT_GT(lammps_loc, lulesh_loc * 5);
  EXPECT_GT(openmx_loc, lammps_loc);
}

}  // namespace
}  // namespace comt::workloads
