// Write-ahead journal: record round-trips, torn-tail truncation, checksum
// corruption, and the journal store's cross-incarnation semantics.
#include "durable/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "obs/metrics.hpp"
#include "store/disk.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"

namespace comt::durable {
namespace {

BeginRecord make_begin() {
  BeginRecord begin;
  begin.inputs_digest = "sha256:abc";
  begin.system = "cluster-a";
  begin.metadata = "{\"name\":\"org/app\"}";
  begin.planned_jobs = 7;
  return begin;
}

CommitRecord make_commit(const std::string& job_id) {
  CommitRecord commit;
  commit.job_id = job_id;
  commit.outputs.push_back({"/src/main.o", "object-bytes-" + job_id, 0644});
  commit.outputs.push_back({"/src/app", "linked-bytes", 0755});
  commit.output_digest = digest_outputs(commit.outputs);
  return commit;
}

TEST(JournalTest, EmptyJournalReplaysToNothing) {
  Journal journal;
  EXPECT_TRUE(journal.empty());
  auto state = journal.replay();
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state.value().begin.has_value());
  EXPECT_TRUE(state.value().commits.empty());
  EXPECT_EQ(state.value().records, 0u);
  EXPECT_EQ(state.value().truncated_bytes, 0u);
}

TEST(JournalTest, BeginAndCommitsRoundTrip) {
  Journal journal;
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("p0:3")).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("p0:5")).ok());

  auto state = journal.replay();
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state.value().begin.has_value());
  EXPECT_EQ(state.value().begin->inputs_digest, "sha256:abc");
  EXPECT_EQ(state.value().begin->system, "cluster-a");
  EXPECT_EQ(state.value().begin->metadata, "{\"name\":\"org/app\"}");
  EXPECT_EQ(state.value().begin->planned_jobs, 7u);
  EXPECT_EQ(state.value().records, 3u);
  ASSERT_EQ(state.value().commits.size(), 2u);
  const CommitRecord& commit = state.value().commits.at("p0:3");
  EXPECT_EQ(commit.outputs, make_commit("p0:3").outputs);
  EXPECT_EQ(commit.output_digest, digest_outputs(commit.outputs));
}

TEST(JournalTest, ReplayIsIdempotent) {
  Journal journal;
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("p0:1")).ok());
  auto first = journal.replay();
  auto second = journal.replay();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().records, second.value().records);
  EXPECT_EQ(journal.size_bytes(), journal.bytes().size());
}

TEST(JournalTest, TornTailIsDetectedAndTruncated) {
  Journal journal;
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("p0:1")).ok());
  const std::size_t intact = journal.size_bytes();

  // A crash mid-append: only a prefix of the next record hits the "disk".
  support::FaultInjector faults;
  journal.set_fault_injector(&faults);
  faults.tear_next(std::string(kJournalAppendSite), 0.6);
  bool crashed = false;
  try {
    (void)journal.append_commit(make_commit("p0:2"));
  } catch (const support::CrashInjected& crash) {
    crashed = true;
    EXPECT_EQ(crash.site, kJournalAppendSite);
  }
  ASSERT_TRUE(crashed);
  ASSERT_GT(journal.size_bytes(), intact);  // a torn prefix was persisted

  auto state = journal.replay();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().records, 2u);
  EXPECT_EQ(state.value().commits.count("p0:2"), 0u);
  EXPECT_GT(state.value().truncated_bytes, 0u);
  // The torn tail is gone: appends after recovery extend a clean log.
  EXPECT_EQ(journal.size_bytes(), intact);
  ASSERT_TRUE(journal.append_commit(make_commit("p0:2")).ok());
  auto again = journal.replay();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().commits.count("p0:2"), 1u);
}

TEST(JournalTest, ChecksumCorruptionTruncatesFromDamage) {
  Journal journal;
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  const std::size_t begin_size = journal.size_bytes();
  ASSERT_TRUE(journal.append_commit(make_commit("p0:1")).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("p0:2")).ok());

  // Flip one payload byte in the first commit record: it and everything after
  // it are dropped (an append-only log has no intact records past damage).
  std::string bytes = journal.bytes();
  bytes[begin_size + 20] ^= 0x01;
  journal.set_bytes(std::move(bytes));
  auto state = journal.replay();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().records, 1u);
  EXPECT_TRUE(state.value().commits.empty());
  EXPECT_GT(state.value().truncated_bytes, 0u);
  EXPECT_EQ(journal.size_bytes(), begin_size);
}

TEST(JournalTest, SecondBeginIsCorrupt) {
  Journal journal;
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());  // append is mechanical
  auto state = journal.replay();
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.error().code, Errc::corrupt);
}

TEST(JournalTest, CommitBeforeBeginIsCorrupt) {
  Journal journal;
  ASSERT_TRUE(journal.append_commit(make_commit("p0:1")).ok());
  auto state = journal.replay();
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.error().code, Errc::corrupt);
}

TEST(JournalTest, DigestOutputsCoversPathContentAndMode) {
  std::vector<JournalOutput> outputs = {{"/a", "x", 0644}};
  std::string base = digest_outputs(outputs);
  EXPECT_EQ(base, digest_outputs(outputs));
  EXPECT_NE(base, digest_outputs({{"/b", "x", 0644}}));
  EXPECT_NE(base, digest_outputs({{"/a", "y", 0644}}));
  EXPECT_NE(base, digest_outputs({{"/a", "x", 0755}}));
}

TEST(JournalTest, CompactionKeepsReplayStateBitIdentical) {
  Journal journal;
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("p0:2")).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("p0:1")).ok());
  auto before = journal.replay();
  ASSERT_TRUE(before.ok());

  auto report = journal.compact();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records_before, 3u);
  EXPECT_EQ(report.value().records_after, 3u);
  EXPECT_EQ(report.value().dropped_commits, 0u);

  auto after = journal.replay();
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.value().begin.has_value());
  EXPECT_EQ(after.value().begin->inputs_digest, before.value().begin->inputs_digest);
  EXPECT_EQ(after.value().begin->planned_jobs, before.value().begin->planned_jobs);
  ASSERT_EQ(after.value().commits.size(), before.value().commits.size());
  for (const auto& [job_id, commit] : before.value().commits) {
    ASSERT_EQ(after.value().commits.count(job_id), 1u);
    EXPECT_EQ(after.value().commits.at(job_id).outputs, commit.outputs);
    EXPECT_EQ(after.value().commits.at(job_id).output_digest, commit.output_digest);
  }
  // Compaction is a deterministic fixed point: commits are rewritten in
  // job-id order, so compacting the snapshot again changes nothing.
  const std::string snapshot(journal.bytes());
  auto again = journal.compact();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(journal.bytes(), snapshot);
}

TEST(JournalTest, CompactionDropsSupersededPassRecords) {
  // A PGO rebuild journals instrument-pass ("pg:") and final-pass ("pu:")
  // commits; once the final pass fully commits, compaction folds the log
  // into begin + final-pass commits only.
  Journal journal;
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("pg:1")).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("pg:2")).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("pu:1")).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("pu:2")).ok());
  const std::size_t full_size = journal.size_bytes();

  auto report = journal.compact([](const CommitRecord& commit) {
    return commit.job_id.rfind("pu:", 0) == 0;
  });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records_before, 5u);
  EXPECT_EQ(report.value().records_after, 3u);
  EXPECT_EQ(report.value().dropped_commits, 2u);
  EXPECT_EQ(report.value().bytes_before, full_size);
  EXPECT_LT(report.value().bytes_after, report.value().bytes_before);
  EXPECT_EQ(journal.size_bytes(), report.value().bytes_after);

  auto state = journal.replay();
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state.value().begin.has_value());
  EXPECT_EQ(state.value().begin->planned_jobs, 7u);
  EXPECT_EQ(state.value().commits.size(), 2u);
  EXPECT_EQ(state.value().commits.count("pg:1"), 0u);
  EXPECT_EQ(state.value().commits.count("pu:1"), 1u);
  EXPECT_EQ(state.value().commits.count("pu:2"), 1u);
  // The compacted log is a clean journal: appends keep working.
  ASSERT_TRUE(journal.append_commit(make_commit("pu:3")).ok());
  auto extended = journal.replay();
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended.value().commits.size(), 3u);
}

TEST(JournalTest, CompactionWithoutBeginIsNoOp) {
  Journal journal;
  auto report = journal.compact();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records_before, 0u);
  EXPECT_EQ(report.value().records_after, 0u);
  EXPECT_EQ(report.value().dropped_commits, 0u);
  EXPECT_TRUE(journal.empty());
}

TEST(JournalTest, CompactionDropsTornTailAndCountsMetrics) {
  obs::MetricsRegistry metrics;
  Journal journal;
  journal.set_metrics(&metrics);
  ASSERT_TRUE(journal.append_begin(make_begin()).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("pg:1")).ok());
  ASSERT_TRUE(journal.append_commit(make_commit("pu:1")).ok());
  support::FaultInjector faults;
  journal.set_fault_injector(&faults);
  faults.tear_next(std::string(kJournalAppendSite), 0.5);
  EXPECT_THROW((void)journal.append_commit(make_commit("pu:2")),
               support::CrashInjected);
  journal.set_fault_injector(nullptr);

  // Compacting a journal with a torn tail rewrites only the intact records;
  // the superseded instrument-pass commit is dropped and counted.
  auto report = journal.compact([](const CommitRecord& commit) {
    return commit.job_id.rfind("pu:", 0) == 0;
  });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().dropped_commits, 1u);
  EXPECT_GT(report.value().bytes_before, report.value().bytes_after);
  auto state = journal.replay();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().truncated_bytes, 0u);
  EXPECT_EQ(state.value().commits.size(), 1u);
  EXPECT_EQ(state.value().commits.count("pu:1"), 1u);
  EXPECT_EQ(metrics.counter_value("journal.compactions"), 1u);
  EXPECT_EQ(metrics.counter_value("journal.compacted_commits"), 1u);
}

TEST(JournalStoreTest, OpenCreatesOnceAndKeepsMetadata) {
  JournalStore store;
  auto first = store.open("org/app:1.0+coM|sys", "{\"tag\":\"1.0+coM\"}");
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first.value(), nullptr);
  ASSERT_TRUE(first.value()->append_begin(make_begin()).ok());

  // Reopening with the same metadata (or none) returns the same journal…
  auto same = store.open("org/app:1.0+coM|sys", "{\"tag\":\"1.0+coM\"}");
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(first.value().get(), same.value().get());
  auto blank = store.open("org/app:1.0+coM|sys");
  ASSERT_TRUE(blank.ok());
  EXPECT_EQ(first.value().get(), blank.value().get());

  // …but different non-empty metadata is a conflict, not a silent reuse:
  // the caller is about to journal a different request under a key another
  // rebuild still owns.
  auto conflict = store.open("org/app:1.0+coM|sys", "{\"tag\":\"2.0+coM\"}");
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.error().code, Errc::already_exists);

  ASSERT_EQ(store.list().size(), 1u);
  EXPECT_EQ(store.list()[0].metadata, "{\"tag\":\"1.0+coM\"}");
  EXPECT_TRUE(store.contains("org/app:1.0+coM|sys"));

  store.remove("org/app:1.0+coM|sys");
  EXPECT_FALSE(store.contains("org/app:1.0+coM|sys"));
  EXPECT_EQ(store.size(), 0u);
  // The removed journal object stays usable through surviving handles.
  EXPECT_FALSE(first.value()->empty());
}

TEST(JournalStoreTest, ListIsSortedByKey) {
  JournalStore store;
  (void)store.open("b");
  (void)store.open("a");
  (void)store.open("c");
  auto entries = store.list();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, "a");
  EXPECT_EQ(entries[1].key, "b");
  EXPECT_EQ(entries[2].key, "c");
}

TEST(JournalStoreTest, FaultInjectorReachesCurrentAndFutureJournals) {
  JournalStore store;
  auto before = store.open("before").value();
  support::FaultInjector faults;
  store.set_fault_injector(&faults);
  auto after = store.open("after").value();
  for (auto journal : {before, after}) {
    faults.tear_next(std::string(kJournalAppendSite));
    EXPECT_THROW((void)journal->append_begin(make_begin()),
                 support::CrashInjected);
  }
}

// ---------------------------------------------------------------------------
// Backed JournalStore: journals survive the store object itself.

TEST(JournalStoreTest, BackedJournalsSurviveStoreReconstruction) {
  auto backing = std::make_shared<store::MemStore>();
  {
    JournalStore store(backing);
    auto journal = store.open("org/app:1.0+coM|x86", "{\"tag\":\"1.0+coM\"}");
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->append_begin(make_begin()).ok());
    ASSERT_TRUE(journal.value()->append_commit(make_commit("pu:1")).ok());
  }  // the JournalStore dies, like the process would

  JournalStore next(backing);
  EXPECT_EQ(next.hydrated(), 1u);
  EXPECT_EQ(next.hydration_dropped(), 0u);
  ASSERT_TRUE(next.contains("org/app:1.0+coM|x86"));
  auto entries = next.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].metadata, "{\"tag\":\"1.0+coM\"}");
  auto state = entries[0].journal->replay();
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state.value().begin.has_value());
  EXPECT_EQ(state.value().begin->inputs_digest, "sha256:abc");
  EXPECT_EQ(state.value().commits.count("pu:1"), 1u);

  // remove() erases durably: a third incarnation finds nothing.
  next.remove("org/app:1.0+coM|x86");
  JournalStore third(backing);
  EXPECT_EQ(third.hydrated(), 0u);
  EXPECT_EQ(third.size(), 0u);
}

TEST(JournalStoreTest, CompactionAndClearWriteThrough) {
  auto backing = std::make_shared<store::MemStore>();
  JournalStore store(backing);
  auto journal = store.open("key", "m").value();
  ASSERT_TRUE(journal->append_begin(make_begin()).ok());
  ASSERT_TRUE(journal->append_commit(make_commit("pu:1")).ok());
  ASSERT_TRUE(journal->append_commit(make_commit("pu:1")).ok());  // duplicate
  ASSERT_TRUE(journal->compact().ok());

  // The persisted copy tracks every mutation: hydrating now yields exactly
  // the compacted snapshot.
  JournalStore next(backing);
  auto replayed = next.list()[0].journal->replay();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().records, 2u);  // begin + one surviving commit
  EXPECT_EQ(next.list()[0].journal->bytes(), journal->bytes());
}

TEST(JournalStoreTest, CorruptPersistedEnvelopeIsDroppedOnHydration) {
  auto backing = std::make_shared<store::MemStore>();
  {
    JournalStore store(backing);
    auto good = store.open("good", "m").value();
    ASSERT_TRUE(good->append_begin(make_begin()).ok());
  }
  // A persisted entry whose metadata header is garbage (size field points
  // past the value) cannot be hydrated safely.
  ASSERT_TRUE(backing->put(std::string(kJournalKeyPrefix) + "bad",
                           std::string("\xFF\xFF\xFF\xFF", 4)).ok());

  JournalStore next(backing);
  EXPECT_EQ(next.hydrated(), 1u);
  EXPECT_EQ(next.hydration_dropped(), 1u);
  EXPECT_TRUE(next.contains("good"));
  EXPECT_FALSE(next.contains("bad"));
  // The damaged entry was erased, so the next incarnation is clean.
  EXPECT_FALSE(backing->contains(std::string(kJournalKeyPrefix) + "bad"));
  JournalStore third(backing);
  EXPECT_EQ(third.hydration_dropped(), 0u);
}

TEST(JournalStoreTest, DiskBackedJournalSurvivesTornAppendAcrossRestart) {
  namespace stdfs = std::filesystem;
  const stdfs::path dir =
      stdfs::temp_directory_path() / "comt-durable-disk-restart";
  stdfs::remove_all(dir);

  support::FaultInjector faults;
  {
    JournalStore store(std::make_shared<store::DiskStore>(dir.string()));
    store.set_fault_injector(&faults);
    auto journal = store.open("org/app:1.0|x86", "req").value();
    ASSERT_TRUE(journal->append_begin(make_begin()).ok());
    ASSERT_TRUE(journal->append_commit(make_commit("pu:1")).ok());
    // The third append tears mid-record: the persisted journal ends in a
    // torn tail, exactly what a power cut leaves on disk.
    faults.tear_next(std::string(kJournalAppendSite));
    EXPECT_THROW((void)journal->append_commit(make_commit("pu:2")),
                 support::CrashInjected);
  }

  JournalStore next(std::make_shared<store::DiskStore>(dir.string()));
  ASSERT_EQ(next.hydrated(), 1u);
  auto entries = next.list();
  EXPECT_EQ(entries[0].metadata, "req");
  auto state = entries[0].journal->replay();
  ASSERT_TRUE(state.ok());
  EXPECT_GT(state.value().truncated_bytes, 0u);  // torn tail detected…
  EXPECT_EQ(state.value().commits.size(), 1u);   // …intact prefix recovered
  EXPECT_EQ(state.value().commits.count("pu:1"), 1u);
  stdfs::remove_all(dir);
}

}  // namespace
}  // namespace comt::durable
