// The coMtainer front-end (§4.2): parses the raw build process recorded by
// the hijacker plus the produced images into the three process models.
#pragma once

#include "buildexec/record.hpp"
#include "core/models.hpp"
#include "oci/oci.hpp"
#include "support/error.hpp"

namespace comt::core {

struct AnalysisInput {
  const buildexec::BuildRecord* record = nullptr;  ///< the hijacker's log
  const oci::Layout* layout = nullptr;             ///< holds both images
  const oci::Image* dist_image = nullptr;          ///< the application image
  const oci::Image* dist_base = nullptr;           ///< the dist stage's base
};

/// Builds the process models: a BuildGraph from the recorded invocations and
/// an ImageModel classifying every dist-image file by provenance.
Result<ProcessModels> analyze(const AnalysisInput& input);

/// Builds just the build graph (exposed for tests and tools).
Result<BuildGraph> build_graph_from_record(const buildexec::BuildRecord& record);

/// Classifies the dist image's files against a base image, a build graph and
/// the image's own package database.
Result<ImageModel> classify_image(const oci::Layout& layout, const oci::Image& dist,
                                  const oci::Image& base, const BuildGraph& graph);

}  // namespace comt::core
