#include "durable/journal.hpp"

#include <cstring>

#include "store/wire.hpp"
#include "support/sha256.hpp"

namespace comt::durable {
namespace {

namespace wire = comt::store::wire;

// Wire format, little-endian throughout (the length/checksum primitives are
// store/wire.hpp — the same codec DiskStore frames values with):
//   record  := [u32 payload size][u64 fnv1a64(payload)][payload]
//   payload := [u8 kind][kind-specific fields]
//   begin   := str inputs_digest, str system, str metadata, u64 planned_jobs
//   commit  := str job_id, str output_digest, u32 count, count × output
//   output  := str path, str content, u32 mode
//   str     := [u32 size][bytes]
constexpr std::uint8_t kKindBegin = 1;
constexpr std::uint8_t kKindCommit = 2;
constexpr std::size_t kHeaderSize = sizeof(std::uint32_t) + sizeof(std::uint64_t);

std::string serialize_begin(const BeginRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(kKindBegin));
  wire::put_str(payload, record.inputs_digest);
  wire::put_str(payload, record.system);
  wire::put_str(payload, record.metadata);
  wire::put_u64(payload, record.planned_jobs);
  return payload;
}

std::string serialize_commit(const CommitRecord& record) {
  std::string payload;
  std::size_t size = 1 + 4 + record.job_id.size() + 4 + record.output_digest.size() + 4;
  for (const JournalOutput& output : record.outputs) {
    size += 4 + output.path.size() + 4 + output.content.size() + 4;
  }
  payload.reserve(size);
  payload.push_back(static_cast<char>(kKindCommit));
  wire::put_str(payload, record.job_id);
  wire::put_str(payload, record.output_digest);
  wire::put_u32(payload, static_cast<std::uint32_t>(record.outputs.size()));
  for (const JournalOutput& output : record.outputs) {
    wire::put_str(payload, output.path);
    wire::put_str(payload, output.content);
    wire::put_u32(payload, output.mode);
  }
  return payload;
}

}  // namespace

std::string digest_outputs(const std::vector<JournalOutput>& outputs) {
  Sha256 hasher;
  // Length-prefix every field so boundaries can't collide. Fields are hashed
  // in place — no framed copy of the (possibly large) content.
  auto frame = [&hasher](std::string_view data) {
    std::string len;
    wire::put_u32(len, static_cast<std::uint32_t>(data.size()));
    hasher.update(len);
    hasher.update(data);
  };
  for (const JournalOutput& output : outputs) {
    frame(output.path);
    frame(output.content);
    std::string mode;
    wire::put_u32(mode, output.mode);
    hasher.update(mode);
  }
  auto digest = hasher.finish();
  return to_hex(digest.data(), digest.size());
}

void Journal::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (metrics == nullptr) {
    appends_ = appended_bytes_ = replayed_records_ = truncated_bytes_ = nullptr;
    compactions_ = compacted_commits_ = nullptr;
    return;
  }
  appends_ = &metrics->counter("journal.appends");
  appended_bytes_ = &metrics->counter("journal.appended_bytes");
  replayed_records_ = &metrics->counter("journal.replayed_records");
  truncated_bytes_ = &metrics->counter("journal.truncated_bytes");
  compactions_ = &metrics->counter("journal.compactions");
  compacted_commits_ = &metrics->counter("journal.compacted_commits");
}

void Journal::set_write_through(std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_through_ = std::move(hook);
}

void Journal::persist_locked() {
  if (write_through_) write_through_(data_);
}

Status Journal::append_begin(const BeginRecord& record) {
  return append(serialize_begin(record));
}

Status Journal::append_commit(const CommitRecord& record) {
  return append(serialize_commit(record));
}

Status Journal::append(std::string payload) {
  std::string header;
  header.reserve(kHeaderSize);
  wire::put_u32(header, static_cast<std::uint32_t>(payload.size()));
  wire::put_u64(header, wire::fnv1a64(payload));

  std::optional<std::size_t> torn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (faults_ != nullptr) {
      torn = faults_->check_torn(kJournalAppendSite, header.size() + payload.size());
    }
    if (torn.has_value()) {
      // The simulated medium persisted only a prefix; the process dies before
      // it could finish the write. replay() truncates this tail. The torn
      // prefix writes through too — that is exactly what the next process
      // incarnation finds on disk.
      const std::size_t from_header = std::min(*torn, header.size());
      data_.append(header, 0, from_header);
      data_.append(payload, 0, *torn - from_header);
    } else {
      data_.append(header);
      data_.append(payload);
      if (appends_ != nullptr) {
        appends_->add();
        appended_bytes_->add(header.size() + payload.size());
      }
    }
    persist_locked();
  }
  if (torn.has_value()) throw support::CrashInjected{std::string(kJournalAppendSite)};
  return Status::success();
}

Result<ReplayState> Journal::replay() {
  std::lock_guard<std::mutex> lock(mutex_);
  return replay_locked();
}

Result<ReplayState> Journal::replay_locked() {
  ReplayState state;
  std::size_t pos = 0;
  while (pos < data_.size()) {
    const std::size_t record_start = pos;
    // A record whose header or payload runs past the buffer, or whose
    // checksum disagrees, is a torn tail: the crash hit mid-append. Nothing
    // after it can be intact (the log is append-only), so drop it all.
    if (data_.size() - pos < kHeaderSize) break;
    wire::Reader header{std::string_view(data_).substr(pos, kHeaderSize)};
    std::uint32_t payload_size = header.u32();
    std::uint64_t checksum = header.u64();
    pos += kHeaderSize;
    if (data_.size() - pos < payload_size) {
      pos = record_start;
      break;
    }
    std::string_view payload = std::string_view(data_).substr(pos, payload_size);
    if (wire::fnv1a64(payload) != checksum) {
      pos = record_start;
      break;
    }
    pos += payload_size;

    wire::Reader reader{payload};
    std::uint8_t kind = reader.u8();
    if (kind == kKindBegin) {
      BeginRecord begin;
      begin.inputs_digest = reader.str();
      begin.system = reader.str();
      begin.metadata = reader.str();
      begin.planned_jobs = reader.u64();
      if (!reader.ok) {
        return make_error(Errc::corrupt, "journal: malformed begin record");
      }
      if (state.begin.has_value()) {
        return make_error(Errc::corrupt, "journal: second begin record");
      }
      state.begin = std::move(begin);
    } else if (kind == kKindCommit) {
      CommitRecord commit;
      commit.job_id = reader.str();
      commit.output_digest = reader.str();
      std::uint32_t count = reader.u32();
      for (std::uint32_t i = 0; i < count && reader.ok; ++i) {
        JournalOutput output;
        output.path = reader.str();
        output.content = reader.str();
        output.mode = reader.u32();
        commit.outputs.push_back(std::move(output));
      }
      if (!reader.ok) {
        return make_error(Errc::corrupt, "journal: malformed commit record");
      }
      if (!state.begin.has_value()) {
        return make_error(Errc::corrupt, "journal: commit before begin");
      }
      state.commits[commit.job_id] = std::move(commit);
    } else {
      return make_error(Errc::corrupt,
                        "journal: unknown record kind " + std::to_string(kind));
    }
    ++state.records;
  }
  if (pos < data_.size()) {
    state.truncated_bytes = data_.size() - pos;
    data_.resize(pos);
    persist_locked();
  }
  if (replayed_records_ != nullptr) {
    replayed_records_->add(state.records);
    truncated_bytes_->add(state.truncated_bytes);
  }
  return state;
}

Result<CompactionReport> Journal::compact(
    const std::function<bool(const CommitRecord&)>& keep) {
  std::lock_guard<std::mutex> lock(mutex_);
  CompactionReport report;
  report.bytes_before = data_.size();
  COMT_TRY(auto state, replay_locked());
  report.records_before = state.records;
  if (!state.begin.has_value()) {
    // Nothing durable yet (empty, or only a torn tail replay just dropped) —
    // keep whatever replay left; there is no snapshot to write.
    report.bytes_after = data_.size();
    report.records_after = state.records;
    return report;
  }

  // Rewrite as one canonical snapshot. ReplayState::commits is keyed by
  // job id, so the record order — hence the byte image — is deterministic:
  // compacting a journal twice, or replaying then re-compacting, is a fixed
  // point.
  std::string fresh;
  auto frame = [&fresh](std::string payload) {
    wire::put_u32(fresh, static_cast<std::uint32_t>(payload.size()));
    wire::put_u64(fresh, wire::fnv1a64(payload));
    fresh.append(payload);
  };
  frame(serialize_begin(*state.begin));
  ++report.records_after;
  for (const auto& [job_id, commit] : state.commits) {
    if (keep && !keep(commit)) {
      ++report.dropped_commits;
      continue;
    }
    frame(serialize_commit(commit));
    ++report.records_after;
  }
  data_ = std::move(fresh);
  persist_locked();
  report.bytes_after = data_.size();
  if (compactions_ != nullptr) {
    compactions_->add();
    compacted_commits_->add(report.dropped_commits);
  }
  return report;
}

bool Journal::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.empty();
}

std::size_t Journal::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size();
}

std::string Journal::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void Journal::set_bytes(std::string bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = std::move(bytes);
  persist_locked();
}

void Journal::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.clear();
  persist_locked();
}

JournalStore::JournalStore(std::shared_ptr<store::KvStore> backing)
    : backing_(std::move(backing)) {
  if (backing_ != nullptr) hydrate();
}

std::string JournalStore::backing_key(const std::string& key) const {
  return std::string(kJournalKeyPrefix) + key;
}

void JournalStore::persist(const std::string& key, std::string_view metadata,
                           const std::string& bytes) {
  // Persisted value: [u32 metadata size][metadata][journal bytes]. The
  // journal bytes carry their own per-record checksums; the metadata prefix
  // rides along so hydration restores what open() was originally told.
  std::string value;
  value.reserve(sizeof(std::uint32_t) + metadata.size() + bytes.size());
  wire::put_str(value, metadata);
  value.append(bytes);
  // Best effort: a failed put leaves the previous persisted state, which is
  // exactly the guarantee a lost fsync gives — replay handles the stale tail.
  (void)backing_->put(backing_key(key), std::move(value));
}

void JournalStore::hydrate() {
  const std::string prefix(kJournalKeyPrefix);
  for (const store::KvEntry& persisted : backing_->list(prefix)) {
    const std::string key = persisted.key.substr(prefix.size());
    auto value = backing_->get(persisted.key);
    bool intact = value.ok();
    Entry entry;
    entry.key = key;
    if (intact) {
      wire::Reader reader{value.value()};
      entry.metadata = reader.str();
      intact = reader.ok;
      if (intact) {
        entry.journal = std::make_shared<Journal>();
        // set_bytes before the write-through hook: hydration must not echo
        // the bytes straight back into the store.
        entry.journal->set_bytes(value.value().substr(reader.pos));
      }
    }
    if (!intact) {
      // The persisted envelope itself is damaged (torn or bit-flipped
      // metadata header) — there is no safe replay. Drop it; the rebuild it
      // guarded reruns from scratch.
      (void)backing_->erase(persisted.key);
      ++hydration_dropped_;
      continue;
    }
    entry.journal->set_write_through(
        [this, key, metadata = entry.metadata](const std::string& bytes) {
          persist(key, metadata, bytes);
        });
    entries_.emplace(key, std::move(entry));
    ++hydrated_;
  }
}

Result<std::shared_ptr<Journal>> JournalStore::open(const std::string& key,
                                                    std::string_view metadata) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (!metadata.empty() && metadata != it->second.metadata) {
      return make_error(Errc::already_exists,
                        "journal '" + key + "' already open with different metadata");
    }
    return it->second.journal;
  }
  Entry entry;
  entry.key = key;
  entry.metadata = std::string(metadata);
  entry.journal = std::make_shared<Journal>();
  entry.journal->set_fault_injector(faults_);
  entry.journal->set_metrics(metrics_);
  if (backing_ != nullptr) {
    entry.journal->set_write_through(
        [this, key, metadata = entry.metadata](const std::string& bytes) {
          persist(key, metadata, bytes);
        });
    // Persist the (empty) journal now so a crash between open and the first
    // append still leaves a recoverable record of the claim.
    persist(key, entry.metadata, std::string());
  }
  it = entries_.emplace(key, std::move(entry)).first;
  return it->second.journal;
}

void JournalStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(key);
  if (backing_ != nullptr) (void)backing_->erase(backing_key(key));
}

bool JournalStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) != 0;
}

std::size_t JournalStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<JournalStore::Entry> JournalStore::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

void JournalStore::set_fault_injector(support::FaultInjector* faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_ = faults;
  for (auto& [key, entry] : entries_) entry.journal->set_fault_injector(faults);
}

void JournalStore::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
  for (auto& [key, entry] : entries_) entry.journal->set_metrics(metrics);
}

}  // namespace comt::durable
