// The parallel rebuild engine: work-stealing pool, DAG scheduler,
// content-addressed compile cache, and the end-to-end guarantees the
// backend builds on them — bit-identical parallel rebuilds and full cache
// hits on unchanged inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/cache.hpp"
#include "sched/compile_cache.hpp"
#include "sched/dag.hpp"
#include "sched/thread_pool.hpp"
#include "store/store.hpp"
#include "support/sha256.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

// ---- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  sched::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.executed(), 100u);
}

TEST(ThreadPoolTest, WorkIsStolenAcrossWorkers) {
  // All tasks land on distinct queues via round-robin, but even a single
  // flooded pool drains: every task runs exactly once.
  sched::ThreadPool pool(2);
  std::mutex mutex;
  std::set<int> seen;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&mutex, &seen, i] {
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(i);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(seen.size(), 64u);
}

TEST(ThreadPoolTest, ShutdownUnderPendingWorkDoesNotHang) {
  sched::ThreadPool pool(1);
  std::mutex gate;
  gate.lock();  // the first task blocks until the main thread opens the gate
  pool.submit([&gate] {
    gate.lock();
    gate.unlock();
  });
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  gate.unlock();
  pool.shutdown();  // queued-but-unstarted work is discarded; must not hang
  EXPECT_LE(ran.load(), 50);
  // Submission after shutdown is a no-op.
  pool.submit([&ran] { ran.fetch_add(100); });
  pool.wait_idle();
  EXPECT_LE(ran.load(), 50);
}

TEST(ThreadPoolTest, ResizeGrowsAndShrinksBetweenBounds) {
  sched::ThreadPool pool(2, 6);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.max_size(), 6u);

  pool.resize(5);
  EXPECT_EQ(pool.size(), 5u);
  pool.resize(99);  // clamped to max_size
  EXPECT_EQ(pool.size(), 6u);
  pool.resize(0);  // clamped to 1
  EXPECT_EQ(pool.size(), 1u);

  // The resized pool still runs everything exactly once.
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) pool.submit([&count] { count.fetch_add(1); });
  pool.resize(4);
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ShrinkDoesNotDropQueuedTasks) {
  sched::ThreadPool pool(4, 4);
  std::mutex gate;
  gate.lock();  // hold the workers so a backlog builds up behind them
  for (int i = 0; i < 4; ++i) {
    pool.submit([&gate] {
      gate.lock();
      gate.unlock();
    });
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  pool.resize(1);  // retire three workers while their deques hold work
  gate.unlock();
  pool.wait_idle();  // the survivor must steal every retiree's leftovers
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.size(), 1u);
}

// ---- DagScheduler -------------------------------------------------------------

TEST(DagTest, CycleIsAnErrorNotADeadlock) {
  sched::DagScheduler dag;
  ASSERT_TRUE(dag.add_job("a", {"c"}, [] { return Status::success(); }).ok());
  ASSERT_TRUE(dag.add_job("b", {"a"}, [] { return Status::success(); }).ok());
  ASSERT_TRUE(dag.add_job("c", {"b"}, [] { return Status::success(); }).ok());

  auto sequential = dag.run(nullptr);
  ASSERT_FALSE(sequential.ok());
  EXPECT_NE(sequential.error().message.find("cycle"), std::string::npos);

  sched::ThreadPool pool(2);
  auto pooled = dag.run(&pool);
  ASSERT_FALSE(pooled.ok());
  EXPECT_NE(pooled.error().message.find("cycle"), std::string::npos);
}

TEST(DagTest, UnknownDependencyIsAnError) {
  sched::DagScheduler dag;
  ASSERT_TRUE(dag.add_job("a", {"ghost"}, [] { return Status::success(); }).ok());
  auto report = dag.run(nullptr);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::not_found);
  EXPECT_NE(report.error().message.find("ghost"), std::string::npos);
}

TEST(DagTest, DuplicateJobIdRejected) {
  sched::DagScheduler dag;
  ASSERT_TRUE(dag.add_job("a", {}, [] { return Status::success(); }).ok());
  Status duplicate = dag.add_job("a", {}, [] { return Status::success(); });
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.error().code, Errc::already_exists);
}

TEST(DagTest, FailureSkipsDependentsButIndependentJobsRun) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    sched::DagScheduler dag;
    std::atomic<bool> c_ran{false};
    ASSERT_TRUE(dag.add_job("a", {}, [] {
                     return Status(make_error(Errc::failed, "boom"));
                   }).ok());
    ASSERT_TRUE(dag.add_job("b", {"a"}, [] { return Status::success(); }).ok());
    ASSERT_TRUE(dag.add_job("c", {}, [&c_ran] {
                     c_ran.store(true);
                     return Status::success();
                   }).ok());
    ASSERT_TRUE(dag.add_job("d", {"b"}, [] { return Status::success(); }).ok());

    std::unique_ptr<sched::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<sched::ThreadPool>(threads);
    auto report = dag.run(pool.get());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(c_ran.load());
    EXPECT_EQ(report.value().executed, 2u);  // a (failed) and c
    EXPECT_EQ(report.value().failed, 1u);
    EXPECT_EQ(report.value().skipped, 2u);  // b, and d transitively
    EXPECT_TRUE(report.value().jobs[1].skipped);
    EXPECT_TRUE(report.value().jobs[3].skipped);
    // first_error surfaces the root cause, not the skip notice.
    Status first = report.value().first_error();
    ASSERT_FALSE(first.ok());
    EXPECT_NE(first.error().message.find("boom"), std::string::npos);
  }
}

TEST(DagTest, ResultsReportedInSubmissionOrder) {
  sched::DagScheduler dag;
  std::vector<std::string> ids;
  for (int i = 9; i >= 0; --i) {
    std::string id = "job" + std::to_string(i);
    std::vector<std::string> deps;
    if (i < 9) deps.push_back("job" + std::to_string(i + 1));  // forward ref ok
    ASSERT_TRUE(dag.add_job(id, deps, [] { return Status::success(); }).ok());
    ids.push_back(id);
  }
  sched::ThreadPool pool(4);
  auto report = dag.run(&pool);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().jobs.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(report.value().jobs[i].id, ids[i]);
    EXPECT_TRUE(report.value().jobs[i].status.ok());
  }
}

TEST(DagTest, DependenciesCompleteBeforeDependents) {
  // A fan-out/fan-in diamond lattice, executed on 4 threads; every job
  // records its global completion sequence and each edge must be ordered.
  sched::DagScheduler dag;
  std::mutex mutex;
  std::map<std::string, int> finish_order;
  int counter = 0;
  auto body = [&](const std::string& id) {
    return [&mutex, &finish_order, &counter, id]() -> Status {
      std::lock_guard<std::mutex> lock(mutex);
      finish_order[id] = counter++;
      return Status::success();
    };
  };
  std::vector<std::pair<std::string, std::string>> edges;
  ASSERT_TRUE(dag.add_job("root", {}, body("root")).ok());
  for (int layer = 0; layer < 3; ++layer) {
    for (int i = 0; i < 8; ++i) {
      std::string id = "n" + std::to_string(layer) + "_" + std::to_string(i);
      std::string dep =
          layer == 0 ? "root" : "n" + std::to_string(layer - 1) + "_" + std::to_string(i);
      ASSERT_TRUE(dag.add_job(id, {dep}, body(id)).ok());
      edges.emplace_back(dep, id);
    }
  }
  std::vector<std::string> last_layer;
  for (int i = 0; i < 8; ++i) last_layer.push_back("n2_" + std::to_string(i));
  ASSERT_TRUE(dag.add_job("sink", last_layer, body("sink")).ok());
  for (const std::string& dep : last_layer) edges.emplace_back(dep, "sink");

  sched::ThreadPool pool(4);
  auto report = dag.run(&pool);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().executed, dag.job_count());
  EXPECT_EQ(report.value().failed, 0u);
  for (const auto& [from, to] : edges) {
    EXPECT_LT(finish_order[from], finish_order[to]) << from << " -> " << to;
  }
}

// ---- CompileCache -------------------------------------------------------------

TEST(CompileCacheTest, KeyDigestSeparatesFields) {
  sched::CacheKey a{"gcc12", "amd64", "/src", {"cc", "-c", "m.c"}};
  sched::CacheKey same = a;
  EXPECT_EQ(a.digest(), same.digest());
  sched::CacheKey other_arch = a;
  other_arch.target_arch = "arm64";
  EXPECT_NE(a.digest(), other_arch.digest());
  sched::CacheKey other_argv = a;
  other_argv.argv = {"cc", "-c", "-O2", "m.c"};
  EXPECT_NE(a.digest(), other_argv.digest());
  // Field boundaries are length-prefixed: shifting bytes between adjacent
  // fields must change the digest.
  sched::CacheKey shifted{"gcc12a", "md64", "/src", {"cc", "-c", "m.c"}};
  EXPECT_NE(a.digest(), shifted.digest());
}

TEST(CompileCacheTest, HitMissAndStoreAccounting) {
  sched::CompileCache cache;
  std::map<std::string, std::string> files = {{"/src/m.c", "int main(){}"}};
  auto digest_of = [&files](const std::string& path) -> std::string {
    auto found = files.find(path);
    return found == files.end() ? std::string() : Sha256::hex_digest(found->second);
  };

  sched::CacheKey key{"gcc12", "amd64", "/src", {"cc", "-c", "m.c", "-o", "m.o"}};
  const std::string digest = key.digest();

  EXPECT_EQ(cache.lookup(digest, digest_of), nullptr);  // cold: miss
  sched::CacheEntry entry;
  entry.input_digests["/src/m.c"] = Sha256::hex_digest(files["/src/m.c"]);
  entry.outputs.push_back({"/src/m.o", "OBJ", 0644});
  cache.store(digest, std::move(entry));
  EXPECT_EQ(cache.size(), 1u);

  auto hit = cache.lookup(digest, digest_of);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->outputs.size(), 1u);
  EXPECT_EQ(hit->outputs[0].content, "OBJ");

  // ccache direct mode: same key, changed input content -> miss.
  files["/src/m.c"] = "int main(){ return 1; }";
  EXPECT_EQ(cache.lookup(digest, digest_of), nullptr);
  // Missing input entirely -> miss too.
  files.erase("/src/m.c");
  EXPECT_EQ(cache.lookup(digest, digest_of), nullptr);

  sched::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(CompileCacheTest, MetricsCountHitsMissesAndInserts) {
  sched::CompileCache cache;
  obs::MetricsRegistry metrics;
  cache.set_metrics(&metrics);
  auto digest_of = [](const std::string&) { return std::string("d"); };

  EXPECT_EQ(cache.lookup("k", digest_of), nullptr);
  sched::CacheEntry entry;
  entry.outputs.push_back({"/o", "OBJ", 0644});
  cache.store("k", std::move(entry));
  EXPECT_NE(cache.lookup("k", digest_of), nullptr);

  EXPECT_EQ(metrics.counter_value("compile_cache.hits"), 1u);
  EXPECT_EQ(metrics.counter_value("compile_cache.misses"), 1u);
  EXPECT_EQ(metrics.counter_value("compile_cache.inserts"), 1u);
}

TEST(CompileCacheTest, AttachedCacheWarmStartsFromTheBackingStore) {
  auto backing = std::make_shared<store::MemStore>();
  sched::CacheEntry original;
  original.input_digests["/src/m.c"] = Sha256::hex_digest("int main(){}");
  original.outputs.push_back({"/src/m.o", "OBJ-bytes", 0644});
  original.outputs.push_back({"/src/app", "EXE-bytes", 0755});
  {
    sched::CompileCache cache;
    cache.attach(backing);
    cache.store("key1", original);
  }  // the cache object dies, like the process would

  sched::CompileCache warm;
  obs::MetricsRegistry metrics;
  warm.set_metrics(&metrics);
  EXPECT_EQ(warm.attach(backing), 1u);
  EXPECT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm.stats().hydrated, 1u);
  EXPECT_EQ(metrics.counter_value("compile_cache.hydrated"), 1u);

  auto digest_of = [](const std::string&) {
    return Sha256::hex_digest("int main(){}");
  };
  auto hit = warm.lookup("key1", digest_of);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->input_digests, original.input_digests);
  ASSERT_EQ(hit->outputs.size(), 2u);
  EXPECT_EQ(hit->outputs[0].content, "OBJ-bytes");
  EXPECT_EQ(hit->outputs[1].path, "/src/app");
  EXPECT_EQ(hit->outputs[1].mode, 0755u);
}

TEST(CompileCacheTest, CorruptPersistedEntryDegradesToMissNeverAWrongHit) {
  auto backing = std::make_shared<store::MemStore>();
  {
    sched::CompileCache cache;
    cache.attach(backing);
    sched::CacheEntry entry;
    entry.outputs.push_back({"/src/m.o", "the right bytes", 0644});
    cache.store("key1", std::move(entry));
  }
  // Flip one bit in the persisted value — a wrong hit would replay wrong
  // outputs into an image, silently.
  const std::string persisted_key = std::string(sched::kCacheKeyPrefix) + "key1";
  std::string raw = backing->get(persisted_key).value();
  raw[raw.size() / 2] ^= 0x04;
  ASSERT_TRUE(backing->put(persisted_key, raw).ok());

  sched::CompileCache warm;
  EXPECT_EQ(warm.attach(backing), 0u);
  EXPECT_EQ(warm.size(), 0u);
  EXPECT_EQ(warm.stats().hydrated, 0u);
  EXPECT_EQ(warm.stats().corrupt_dropped, 1u);
  auto digest_of = [](const std::string&) { return std::string("d"); };
  EXPECT_EQ(warm.lookup("key1", digest_of), nullptr);  // a miss, not a hit
  // The damaged entry was erased from the backing, so the next attach is
  // clean instead of re-tripping.
  EXPECT_FALSE(backing->contains(persisted_key));
}

// ---- end-to-end: parallel rebuild ---------------------------------------------

// Builds the comd application through the hijacking builder and extends it,
// returning the layout with "comd.dist+coM" installed.
oci::Layout build_extended_world(const sysmodel::SystemProfile& system) {
  oci::Layout layout;
  EXPECT_TRUE(workloads::install_user_images(layout, system.arch).ok());
  EXPECT_TRUE(workloads::install_system_images(layout, system).ok());
  const workloads::AppSpec* app = workloads::find_app("comd");
  EXPECT_NE(app, nullptr);
  auto file = dockerfile::parse(workloads::dockerfile_text(*app, system.arch, true));
  EXPECT_TRUE(file.ok());
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo(system.arch));
  buildexec::BuildRecord record;
  EXPECT_TRUE(builder
                  .build(file.value(), workloads::build_context(*app), "comd.dist", "",
                         &record)
                  .ok());
  auto stage = layout.find_image("comd.dist.stage0");
  EXPECT_TRUE(stage.ok());
  auto build_rootfs = layout.flatten(stage.value());
  EXPECT_TRUE(build_rootfs.ok());
  EXPECT_TRUE(core::comtainer_build(layout, "comd.dist", workloads::base_tag(system.arch),
                                    record, build_rootfs.value())
                  .ok());
  return layout;
}

core::RebuildOptions rebuild_options(const sysmodel::SystemProfile& system) {
  core::RebuildOptions options;
  options.system = &system;
  options.system_repo = &workloads::system_repo(system);
  options.sysenv_tag = workloads::sysenv_tag(system);
  return options;
}

TEST(ParallelRebuildTest, ParallelImageIsBitIdenticalToSequential) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  oci::Layout layout = build_extended_world(system);

  core::RebuildOptions sequential = rebuild_options(system);
  sequential.threads = 1;
  auto first = core::comtainer_rebuild(layout, "comd.dist+coM", sequential);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  ASSERT_GT(first.value().jobs, 0u);
  ASSERT_GT(first.value().nodes_executed, 0u);

  // Every concurrent width takes the epoch-snapshot path; all of them must
  // reproduce the sequential image bit for bit: equal manifest digests mean
  // equal config, layers, everything.
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::RebuildOptions parallel = rebuild_options(system);
    parallel.threads = threads;
    auto second = core::comtainer_rebuild(layout, "comd.dist+coM", parallel);
    ASSERT_TRUE(second.ok()) << "threads=" << threads << ": "
                             << second.error().to_string();
    EXPECT_EQ(first.value().jobs, second.value().jobs) << "threads=" << threads;
    EXPECT_EQ(first.value().image.manifest_digest.value,
              second.value().image.manifest_digest.value)
        << "threads=" << threads;
    EXPECT_EQ(first.value().files_rebuilt, second.value().files_rebuilt)
        << "threads=" << threads;
  }
}

TEST(ParallelRebuildTest, SecondRebuildIsAllCacheHits) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  oci::Layout layout = build_extended_world(system);

  sched::CompileCache cache;
  core::RebuildOptions options = rebuild_options(system);
  options.threads = 2;
  options.compile_cache = &cache;

  auto first = core::comtainer_rebuild(layout, "comd.dist+coM", options);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_EQ(first.value().cache_hits, 0u);
  EXPECT_GT(first.value().cache_misses, 0u);
  EXPECT_EQ(cache.stats().stores, first.value().cache_misses);

  // Nothing changed: the second rebuild replays every job from the cache and
  // still produces the identical image.
  auto second = core::comtainer_rebuild(layout, "comd.dist+coM", options);
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_EQ(second.value().cache_misses, 0u);
  EXPECT_EQ(second.value().cache_hits, second.value().jobs);
  EXPECT_EQ(second.value().cache_hits, first.value().cache_misses);
  EXPECT_EQ(first.value().image.manifest_digest.value,
            second.value().image.manifest_digest.value);
}

TEST(ParallelRedirectTest, ThreadedRedirectMatchesSequential) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  oci::Layout layout = build_extended_world(system);
  auto rebuilt = core::comtainer_rebuild(layout, "comd.dist+coM", rebuild_options(system));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().to_string();

  core::RedirectOptions redirect;
  redirect.system = &system;
  redirect.system_repo = &workloads::system_repo(system);
  redirect.rebase_tag = workloads::rebase_tag(system);
  redirect.threads = 1;
  auto sequential = core::comtainer_redirect(layout, "comd.dist+coMre", redirect);
  ASSERT_TRUE(sequential.ok()) << sequential.error().to_string();

  redirect.threads = 4;
  auto parallel = core::comtainer_redirect(layout, "comd.dist+coMre", redirect);
  ASSERT_TRUE(parallel.ok()) << parallel.error().to_string();

  EXPECT_EQ(sequential.value().image.manifest_digest.value,
            parallel.value().image.manifest_digest.value);
  EXPECT_EQ(sequential.value().files_from_rebuild, parallel.value().files_from_rebuild);
}

}  // namespace
}  // namespace comt
