// Conversion from OCI images to the formats HPC container engines consume.
//
// The paper executes its images with Charliecloud, and the artifact notes
// that HPC engines "may necessitate the conversion from OCI format to other
// formats". Two conversions are provided:
//  - a Charliecloud-style *flat image directory*: the flattened root
//    filesystem plus a /ch/environment file and /ch/metadata.json (what
//    `ch-convert` produces, runnable with `ch-run ./imgdir -- cmd`), and
//  - a Singularity-SIF-style *single-file image*: one blob bundling a
//    little header, the runtime metadata and the squashed root tree (here a
//    deterministic tar instead of squashfs).
#pragma once

#include <string>
#include <string_view>

#include "oci/oci.hpp"
#include "support/error.hpp"

namespace comt::oci {

/// A Charliecloud-style flat image: rootfs with /ch metadata baked in.
struct FlatImage {
  vfs::Filesystem rootfs;              ///< includes /ch/environment etc.
  std::vector<std::string> entrypoint;
  std::string architecture;
};

/// Flattens `image` and embeds its runtime configuration the way
/// `ch-convert` does (environment as KEY=value lines, metadata as JSON).
Result<FlatImage> to_flat_image(const Layout& layout, const Image& image);

/// Magic prefix of SIF-style single-file images.
inline constexpr std::string_view kSifMagic = "COMT-SIF1";

/// Packs the image into one self-contained blob.
Result<std::string> to_sif(const Layout& layout, const Image& image);

/// Unpacks a SIF blob back into a flat image (what the runtime mounts).
Result<FlatImage> from_sif(std::string_view blob);

}  // namespace comt::oci
