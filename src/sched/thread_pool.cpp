#include "sched/thread_pool.hpp"

namespace comt::sched {
namespace {

/// Rounds an idle worker rescans (with yields) before parking. Parking costs
/// two lock acquisitions and a syscall-grade wakeup; a short spin absorbs the
/// inter-job gaps of a busy schedule without ever touching a lock.
constexpr int kSpinRounds = 32;

/// How many extra injected tasks a worker moves into its own deque per
/// injection-queue visit — one lock acquisition amortized over the chunk,
/// and the surplus becomes lock-free steal targets for siblings.
constexpr std::size_t kInjectChunk = 16;

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// submit() from a worker can use the lock-free own-deque path.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

namespace detail {

StealDeque::Ring::Ring(std::int64_t cap)
    : capacity(cap), slots(new std::atomic<Task*>[cap]()) {}

StealDeque::StealDeque() {
  retired_.push_back(std::make_unique<Ring>(64));
  ring_.store(retired_.back().get(), std::memory_order_relaxed);
}

StealDeque::~StealDeque() {
  // No concurrency by the time a deque dies; drop whatever was never taken.
  const std::int64_t top = top_.load(std::memory_order_relaxed);
  const std::int64_t bottom = bottom_.load(std::memory_order_relaxed);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  for (std::int64_t i = top; i < bottom; ++i) delete ring->get(i);
}

StealDeque::Ring* StealDeque::grow(Ring* ring, std::int64_t top, std::int64_t bottom) {
  auto bigger = std::make_unique<Ring>(ring->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, ring->get(i));
  Ring* raw = bigger.get();
  retired_.push_back(std::move(bigger));
  ring_.store(raw, std::memory_order_release);
  return raw;
}

void StealDeque::push(Task task) {
  Task* heap = new Task(std::move(task));
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (b - t > ring->capacity - 1) ring = grow(ring, t, b);
  ring->put(b, heap);
  // The release publishes the slot (and the Task it points at) to thieves.
  bottom_.store(b + 1, std::memory_order_release);
}

StealDeque::Task StealDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Ring* ring = ring_.load(std::memory_order_relaxed);
  // seq_cst store/load pair: the reservation of slot b must be globally
  // ordered against a thief's top/bottom reads (Chase–Lev's one subtle race).
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  Task* task = nullptr;
  if (t <= b) {
    task = ring->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);  // deque was empty
  }
  if (task == nullptr) return {};
  Task out = std::move(*task);
  delete task;
  return out;
}

StealDeque::Task StealDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return {};
  Ring* ring = ring_.load(std::memory_order_acquire);
  Task* task = ring->get(t);
  // Claim index t. Failure means the owner popped it or another thief beat
  // us; either way the caller just rescans. Claiming before use is also what
  // makes the slot read ABA-safe: the owner can only recycle slot t after
  // top has advanced past it, and top never goes backwards.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return {};
  }
  Task out = std::move(*task);
  delete task;
  return out;
}

bool StealDeque::empty() const {
  return top_.load(std::memory_order_relaxed) >= bottom_.load(std::memory_order_relaxed);
}

}  // namespace detail

ThreadPool::ThreadPool(std::size_t threads, std::size_t max_threads) {
  if (threads == 0) threads = 1;
  if (max_threads < threads) max_threads = threads;
  // Every slot a future resize() could activate exists from the start, so
  // take()'s scan and submit()'s index never race a vector reallocation.
  queues_.reserve(max_threads);
  for (std::size_t i = 0; i < max_threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.resize(max_threads);
  active_target_.store(threads, std::memory_order_release);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_[i] = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::resize(std::size_t threads) {
  if (threads == 0) threads = 1;
  if (threads > queues_.size()) threads = queues_.size();
  std::lock_guard<std::mutex> resize(resize_mutex_);
  if (stopping_.load(std::memory_order_acquire)) return;
  const std::size_t current = active_target_.load(std::memory_order_acquire);
  if (threads == current) return;
  if (threads > current) {
    // A slot between the old and new target may still hold a thread from an
    // earlier shrink; it is exiting (its index was >= the old target), so the
    // join is bounded by its final task.
    for (std::size_t i = current; i < threads; ++i) {
      if (workers_[i].joinable()) workers_[i].join();
    }
    active_target_.store(threads, std::memory_order_release);
    for (std::size_t i = current; i < threads; ++i) {
      workers_[i] = std::thread([this, i] { worker_loop(i); });
    }
  } else {
    active_target_.store(threads, std::memory_order_release);
  }
  // Wake everyone: retirees parked on the condition variable must observe the
  // new target and exit; survivors must rescan so tasks left in a retiree's
  // deque are stolen rather than stranded until the next submission.
  work_epoch_.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> park(park_mutex_);
  work_available_.notify_all();
}

void ThreadPool::set_metrics(obs::MetricsRegistry* metrics, std::string_view prefix) {
  if (metrics == nullptr) {
    queue_wait_ms_.store(nullptr, std::memory_order_release);
    task_counter_.store(nullptr, std::memory_order_release);
    steal_counter_.store(nullptr, std::memory_order_release);
    park_counter_.store(nullptr, std::memory_order_release);
    return;
  }
  // Release-publish so a worker's acquire load sees fully constructed
  // instruments; the registry keeps them alive for its own lifetime.
  queue_wait_ms_.store(&metrics->histogram(std::string(prefix) + ".queue_wait_ms"),
                       std::memory_order_release);
  task_counter_.store(&metrics->counter(std::string(prefix) + ".tasks"),
                      std::memory_order_release);
  steal_counter_.store(&metrics->counter(std::string(prefix) + ".steals"),
                       std::memory_order_release);
  park_counter_.store(&metrics->counter(std::string(prefix) + ".parks"),
                      std::memory_order_release);
}

std::function<void()> ThreadPool::instrument(std::function<void()> task) {
  obs::Histogram* wait = queue_wait_ms_.load(std::memory_order_acquire);
  obs::Counter* tasks = task_counter_.load(std::memory_order_acquire);
  if (wait == nullptr || tasks == nullptr) return task;
  return [wait, tasks, queued = obs::Stopwatch(), task = std::move(task)] {
    wait->observe(queued.elapsed_ms());
    tasks->add();
    task();
  };
}

void ThreadPool::notify_work(std::size_t tasks) {
  if (tasks == 0) return;
  work_epoch_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> park(park_mutex_);
    work_available_.notify_all();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (stopping_.load(std::memory_order_acquire)) return;
  task = instrument(std::move(task));
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (tls_worker.pool == this) {
    // Lock-free fast path: a task spawned by a pool task lands in the
    // spawning worker's own deque; siblings steal it if the worker is busy.
    queues_[tls_worker.index]->deque.push(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    injected_.push_back(std::move(task));
  }
  notify_work(1);
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty() || stopping_.load(std::memory_order_acquire)) return;
  outstanding_.fetch_add(static_cast<std::int64_t>(tasks.size()),
                         std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    for (auto& task : tasks) injected_.push_back(instrument(std::move(task)));
  }
  notify_work(tasks.size());
}

std::function<void()> ThreadPool::take_injected(std::size_t self) {
  std::lock_guard<std::mutex> lock(inject_mutex_);
  if (injected_.empty()) return {};
  std::function<void()> task = std::move(injected_.front());
  injected_.pop_front();
  // Amortize the lock: carry a chunk into our own deque, where we pop it
  // lock-free and idle siblings steal it lock-free.
  for (std::size_t moved = 0; moved < kInjectChunk && !injected_.empty(); ++moved) {
    queues_[self]->deque.push(std::move(injected_.front()));
    injected_.pop_front();
  }
  return task;
}

std::function<void()> ThreadPool::take(std::size_t self) {
  if (auto task = queues_[self]->deque.pop()) return task;
  if (auto task = take_injected(self)) return task;
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    if (auto task = queues_[(self + offset) % queues_.size()]->deque.steal()) {
      if (obs::Counter* steals = steal_counter_.load(std::memory_order_acquire)) {
        steals->add();
      }
      return task;
    }
  }
  return {};
}

void ThreadPool::finish_task() {
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task out: take the idle lock so a concurrent wait_idle() cannot
    // miss the notification between its predicate check and its wait.
    std::lock_guard<std::mutex> idle(idle_mutex_);
    all_done_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker = {this, self};
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) break;
    // Park-and-retire: a shrink moved the target below this slot. Exit after
    // the current task; anything left in this slot's deque stays stealable
    // by the surviving workers (resize woke them to rescan).
    if (self >= active_target_.load(std::memory_order_acquire)) break;
    if (auto task = take(self)) {
      task();
      finish_task();
      continue;
    }
    // Spin briefly before parking: most idle gaps are a sibling finishing
    // the task that frees ours.
    bool found = false;
    for (int round = 0; round < kSpinRounds && !found; ++round) {
      std::this_thread::yield();
      if (stopping_.load(std::memory_order_acquire)) break;
      if (auto task = take(self)) {
        task();
        finish_task();
        found = true;
      }
    }
    if (found || stopping_.load(std::memory_order_acquire)) continue;
    // Park. The epoch read precedes the final rescan: any submission after
    // the rescan bumps the epoch, so either we see its work or we see the
    // epoch move and skip the wait.
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    if (auto task = take(self)) {
      task();
      finish_task();
      continue;
    }
    std::unique_lock<std::mutex> park(park_mutex_);
    if (stopping_.load(std::memory_order_acquire) ||
        work_epoch_.load(std::memory_order_acquire) != epoch) {
      continue;
    }
    sleepers_.fetch_add(1, std::memory_order_release);
    if (obs::Counter* parks = park_counter_.load(std::memory_order_acquire)) {
      parks->add();
    }
    work_available_.wait(park, [this, epoch, self] {
      return stopping_.load(std::memory_order_acquire) ||
             self >= active_target_.load(std::memory_order_acquire) ||
             work_epoch_.load(std::memory_order_acquire) != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_release);
  }
  tls_worker = {};
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> idle(idle_mutex_);
  all_done_.wait(idle, [this] {
    return outstanding_.load(std::memory_order_acquire) <= 0;
  });
}

void ThreadPool::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    return;
  }
  {
    std::lock_guard<std::mutex> park(park_mutex_);
    work_available_.notify_all();
  }
  // The resize lock orders this join after any in-flight resize: a resize
  // that already passed its stopping_ check finishes spawning before we
  // join, and every later resize sees stopping_ and no-ops.
  std::lock_guard<std::mutex> resize(resize_mutex_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Single-threaded from here: discard unstarted work so wait_idle() callers
  // blocked on it are released — shutdown under pending work never hangs.
  std::int64_t discarded = 0;
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    discarded += static_cast<std::int64_t>(injected_.size());
    injected_.clear();
  }
  for (const auto& worker : queues_) {
    while (worker->deque.steal()) ++discarded;
  }
  if (discarded != 0) outstanding_.fetch_sub(discarded, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> idle(idle_mutex_);
  all_done_.notify_all();
}

}  // namespace comt::sched
