// RebuildService: the multi-tenant build-farm daemon. Covers the full ticket
// lifecycle (submit → queue → rebuild → push), request coalescing, bounded
// admission with priority-aware load shedding, queue-wait deadlines,
// retry/backoff against injected transient faults, permanent-failure
// surfacing, the shared cross-tenant compile cache, and graceful drain.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "registry/registry.hpp"
#include "service/service.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt::service {
namespace {

/// Builds `app_name` on the user side and pushes its extended image to the
/// hub under "name:tag" — the state the service finds in production.
Status publish(registry::Registry& hub, const char* app_name, std::string_view name,
               std::string_view tag) {
  const workloads::AppSpec* app = workloads::find_app(app_name);
  if (app == nullptr) return make_error(Errc::not_found, "no such app in the corpus");
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  COMT_TRY(workloads::PreparedApp prepared, world.prepare(*app));
  return hub.push(world.layout(), prepared.extended_tag, name, tag);
}

/// A tenant target for the x86 cluster: profile, optimized stack, Sysenv.
TargetSystem make_target() {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  TargetSystem target;
  target.profile = &system;
  target.repo = &workloads::system_repo(system);
  EXPECT_TRUE(workloads::install_system_images(target.base_layout, system).ok());
  target.sysenv_tag = workloads::sysenv_tag(system);
  return target;
}

constexpr const char* kSys = "x86";

TEST(ServiceTest, SubmitRebuildsAndPushesResult) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  RebuildService svc(hub);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
  auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(ticket.ok()) << ticket.error().to_string();
  auto done = svc.wait(ticket.value());
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, JobState::succeeded) << done.value().result.error().to_string();
  EXPECT_EQ(done.value().output, std::string("hub/minimd:1.0+coMre.") + kSys);
  EXPECT_EQ(done.value().trace.attempts, 1);
  EXPECT_TRUE(done.value().trace.backoff_ms.empty());
  EXPECT_GT(done.value().trace.compile_jobs, 0u);
  EXPECT_FALSE(done.value().trace.coalesced);

  // The rebuilt image really is in the hub and is a valid, runnable image.
  EXPECT_TRUE(hub.has("hub/minimd", std::string("1.0+coMre.") + kSys));
  oci::Layout out;
  ASSERT_TRUE(hub.pull("hub/minimd", std::string("1.0+coMre.") + kSys, out, "got").ok());
  auto image = out.find_image("got");
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(out.flatten(image.value()).ok());

  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.succeeded, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(ServiceTest, UnknownImageAndUnknownSystemAreRejectedUpFront) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  RebuildService svc(hub);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  auto no_image = svc.submit({"hub/ghost", "1.0", kSys});
  ASSERT_FALSE(no_image.ok());
  EXPECT_EQ(no_image.error().code, Errc::not_found);

  auto no_system = svc.submit({"hub/minimd", "1.0", "andromeda"});
  ASSERT_FALSE(no_system.ok());
  EXPECT_EQ(no_system.error().code, Errc::not_found);

  auto no_ticket = svc.status(999);
  ASSERT_FALSE(no_ticket.ok());
  EXPECT_EQ(no_ticket.error().code, Errc::not_found);
}

TEST(ServiceTest, DuplicateSubmissionsCoalesceIntoOneRebuild) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  RebuildService svc(hub);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  svc.pause();  // hold starts so all duplicates land on the queued job
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  EXPECT_EQ(svc.queue_depth(), 1u);  // one job serves all four tickets
  svc.resume();

  int coalesced = 0;
  std::string output;
  for (Ticket ticket : tickets) {
    auto done = svc.wait(ticket);
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done.value().state, JobState::succeeded);
    if (output.empty()) output = done.value().output;
    EXPECT_EQ(done.value().output, output);  // everyone gets the same result
    if (done.value().trace.coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, 3);
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.coalesced, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.succeeded, 1u);  // one rebuild ran, not four
}

TEST(ServiceTest, ResubmitAfterCompletionIsANewJobServedFromCompileCache) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  RebuildService svc(hub);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  auto first = svc.submit({"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(first.ok());
  auto first_done = svc.wait(first.value());
  ASSERT_EQ(first_done.value().state, JobState::succeeded);
  EXPECT_GT(first_done.value().trace.cache_misses, 0u);

  auto second = svc.submit({"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(second.ok());
  auto second_done = svc.wait(second.value());
  ASSERT_EQ(second_done.value().state, JobState::succeeded);
  EXPECT_FALSE(second_done.value().trace.coalesced);  // first already finished
  // The warm shared cache replays every compile job.
  EXPECT_GT(second_done.value().trace.cache_hits, 0u);
  EXPECT_EQ(second_done.value().trace.cache_misses, 0u);
}

TEST(ServiceTest, CompileCacheIsSharedAcrossTenantSystems) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  RebuildService svc(hub);
  // Two tenant fingerprints backed by identical hardware: a second cluster of
  // the same model. Their rebuilds share the content-addressed cache.
  ASSERT_TRUE(svc.add_system("siteA", make_target()).ok());
  ASSERT_TRUE(svc.add_system("siteB", make_target()).ok());

  auto warm = svc.submit({"hub/minimd", "1.0", "siteA"});
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(svc.wait(warm.value()).value().state, JobState::succeeded);

  auto reuse = svc.submit({"hub/minimd", "1.0", "siteB"});
  ASSERT_TRUE(reuse.ok());
  auto done = svc.wait(reuse.value());
  ASSERT_EQ(done.value().state, JobState::succeeded);
  EXPECT_FALSE(done.value().trace.coalesced);  // different system: its own job
  EXPECT_GT(done.value().trace.cache_hits, 0u);
  EXPECT_EQ(done.value().trace.cache_misses, 0u);
  // Each system got its own output reference.
  EXPECT_TRUE(hub.has("hub/minimd", "1.0+coMre.siteA"));
  EXPECT_TRUE(hub.has("hub/minimd", "1.0+coMre.siteB"));
}

TEST(ServiceTest, FullQueueShedsLowestPriorityForHigherArrival) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  ASSERT_TRUE(publish(hub, "comd", "hub/comd", "1.0").ok());
  ASSERT_TRUE(publish(hub, "hpccg", "hub/hpccg", "1.0").ok());

  ServiceOptions options;
  options.queue_capacity = 2;
  options.workers_per_system = 1;
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
  svc.pause();  // keep everything queued while we probe admission

  auto batch_old = svc.submit({"hub/minimd", "1.0", kSys, Priority::batch});
  auto batch_new = svc.submit({"hub/comd", "1.0", kSys, Priority::batch});
  ASSERT_TRUE(batch_old.ok());
  ASSERT_TRUE(batch_new.ok());
  EXPECT_EQ(svc.queue_depth(), 2u);

  // Queue full: an interactive arrival evicts the newest batch job…
  auto urgent = svc.submit({"hub/hpccg", "1.0", kSys, Priority::interactive});
  ASSERT_TRUE(urgent.ok());
  EXPECT_EQ(svc.queue_depth(), 2u);
  auto evicted = svc.status(batch_new.value());
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted.value().state, JobState::rejected);
  EXPECT_NE(evicted.value().result.error().message.find("load shed"), std::string::npos);

  // …while an equal-priority arrival is itself shed.
  auto turned_away = svc.submit({"hub/comd", "1.0", kSys, Priority::batch});
  ASSERT_TRUE(turned_away.ok());
  auto rejected = svc.status(turned_away.value());
  EXPECT_EQ(rejected.value().state, JobState::rejected);
  EXPECT_NE(rejected.value().result.error().message.find("queue full"), std::string::npos);

  svc.resume();
  EXPECT_EQ(svc.wait(batch_old.value()).value().state, JobState::succeeded);
  EXPECT_EQ(svc.wait(urgent.value()).value().state, JobState::succeeded);
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.admitted, 3u);
}

TEST(ServiceTest, HigherPriorityStartsFirst) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  ASSERT_TRUE(publish(hub, "comd", "hub/comd", "1.0").ok());

  ServiceOptions options;
  options.workers_per_system = 1;
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
  svc.pause();
  auto batch = svc.submit({"hub/minimd", "1.0", kSys, Priority::batch});
  auto urgent = svc.submit({"hub/comd", "1.0", kSys, Priority::interactive});
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(urgent.ok());
  svc.resume();

  // The single worker must pick the interactive job although it arrived
  // second; by the time the batch job finishes, the urgent one has too.
  auto batch_done = svc.wait(batch.value());
  ASSERT_EQ(batch_done.value().state, JobState::succeeded);
  auto urgent_done = svc.status(urgent.value());
  ASSERT_TRUE(urgent_done.ok());
  EXPECT_EQ(urgent_done.value().state, JobState::succeeded);
  EXPECT_LE(urgent_done.value().trace.queue_ms, batch_done.value().trace.queue_ms);
}

TEST(ServiceTest, QueueDeadlineExpiresBeforeTheJobStarts) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  RebuildService svc(hub);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  svc.pause();
  SubmitRequest request{"hub/minimd", "1.0", kSys};
  request.deadline_ms = 5;
  auto ticket = svc.submit(request);
  ASSERT_TRUE(ticket.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  svc.resume();

  auto done = svc.wait(ticket.value());
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().state, JobState::expired);
  EXPECT_NE(done.value().result.error().message.find("deadline"), std::string::npos);
  EXPECT_EQ(svc.stats().expired, 1u);
  // Nothing was pushed for the expired job.
  EXPECT_FALSE(hub.has("hub/minimd", std::string("1.0+coMre.") + kSys));
}

TEST(ServiceRetryTest, TransientPullFaultsRecoverWithMonotonicBackoff) {
  support::FaultInjector faults;
  registry::Registry hub;
  hub.set_fault_injector(&faults);
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  ServiceOptions options;
  options.max_attempts = 4;
  options.sleep_on_backoff = false;  // deterministic schedule, no clock
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  // "Fail the first 2 pulls": attempts 1 and 2 die at the pull, 3 succeeds.
  faults.fail_next(registry::kPullFaultSite, 2);
  auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(ticket.ok());
  auto done = svc.wait(ticket.value());
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, JobState::succeeded) << done.value().result.error().to_string();
  EXPECT_EQ(done.value().trace.attempts, 3);
  ASSERT_EQ(done.value().trace.backoff_ms.size(), 2u);
  EXPECT_GT(done.value().trace.backoff_ms[0], 0.0);
  EXPECT_GE(done.value().trace.backoff_ms[1], done.value().trace.backoff_ms[0]);
  EXPECT_EQ(faults.injected(registry::kPullFaultSite), 2u);
  EXPECT_EQ(svc.stats().retries, 2u);
  EXPECT_TRUE(hub.has("hub/minimd", std::string("1.0+coMre.") + kSys));
}

TEST(ServiceRetryTest, SpuriousCompileFaultRecoversOnRetry) {
  support::FaultInjector faults;
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  ServiceOptions options;
  options.sleep_on_backoff = false;
  options.faults = &faults;  // wired into every rebuild's compile jobs
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  faults.fail_next(core::kCompileFaultSite, 1);
  auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(ticket.ok());
  auto done = svc.wait(ticket.value());
  ASSERT_EQ(done.value().state, JobState::succeeded) << done.value().result.error().to_string();
  EXPECT_EQ(done.value().trace.attempts, 2);
  EXPECT_EQ(done.value().trace.backoff_ms.size(), 1u);
  EXPECT_EQ(faults.injected(core::kCompileFaultSite), 1u);
}

TEST(ServiceRetryTest, PersistentFaultsSurfaceAsPermanentFailureAfterMaxAttempts) {
  support::FaultInjector faults;
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  ServiceOptions options;
  options.max_attempts = 3;
  options.sleep_on_backoff = false;
  options.faults = &faults;
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  // Every compile job fails, on every attempt.
  faults.fail_every(core::kCompileFaultSite, 1);
  auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(ticket.ok());
  auto done = svc.wait(ticket.value());
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().state, JobState::failed);
  EXPECT_EQ(done.value().trace.attempts, 3);
  EXPECT_EQ(done.value().trace.backoff_ms.size(), 2u);
  EXPECT_GE(done.value().trace.backoff_ms[1], done.value().trace.backoff_ms[0]);
  EXPECT_NE(done.value().result.error().message.find("after 3 attempt"), std::string::npos);
  EXPECT_NE(done.value().result.error().message.find("injected fault"), std::string::npos);
  EXPECT_EQ(svc.stats().failed, 1u);
  EXPECT_FALSE(hub.has("hub/minimd", std::string("1.0+coMre.") + kSys));
}

TEST(ServiceRetryTest, EveryThirdCompileJobFaultExhaustsRetries) {
  support::FaultInjector faults;
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "lammps", "hub/lammps", "1.0").ok());

  // Learn the app's compile-job count with a clean service first.
  std::size_t compile_jobs = 0;
  {
    RebuildService probe(hub);
    ASSERT_TRUE(probe.add_system(kSys, make_target()).ok());
    auto ticket = probe.submit({"hub/lammps", "1.0", kSys});
    ASSERT_TRUE(ticket.ok());
    auto done = probe.wait(ticket.value());
    ASSERT_EQ(done.value().state, JobState::succeeded);
    compile_jobs = done.value().trace.compile_jobs;
  }
  // With >= 3 jobs per attempt, a fail-every-3rd schedule guarantees at least
  // one fault on every attempt — the failure must go permanent.
  ASSERT_GE(compile_jobs, 3u);

  ServiceOptions options;
  options.max_attempts = 2;
  options.sleep_on_backoff = false;
  options.faults = &faults;
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
  faults.fail_every(core::kCompileFaultSite, 3);
  auto ticket = svc.submit({"hub/lammps", "1.0", kSys});
  ASSERT_TRUE(ticket.ok());
  auto done = svc.wait(ticket.value());
  EXPECT_EQ(done.value().state, JobState::failed);
  EXPECT_EQ(done.value().trace.attempts, 2);
  EXPECT_GE(faults.injected(core::kCompileFaultSite), 2u);  // >= one per attempt
}

TEST(ServiceDrainTest, DrainFailsQueuedJobsAndCompletesInFlightOnes) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  ASSERT_TRUE(publish(hub, "comd", "hub/comd", "1.0").ok());

  ServiceOptions options;
  options.workers_per_system = 1;
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  svc.pause();
  auto first = svc.submit({"hub/minimd", "1.0", kSys});
  auto second = svc.submit({"hub/comd", "1.0", kSys});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  svc.resume();
  // Wait until the single worker has the first job in flight…
  while (svc.status(first.value()).value().state == JobState::queued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  svc.drain();  // …then drain: in-flight completes, queued fails distinctly.

  auto first_done = svc.status(first.value());
  ASSERT_TRUE(first_done.ok());
  EXPECT_EQ(first_done.value().state, JobState::succeeded);
  EXPECT_TRUE(hub.has("hub/minimd", std::string("1.0+coMre.") + kSys));

  auto second_done = svc.status(second.value());
  ASSERT_TRUE(second_done.ok());
  ASSERT_TRUE(is_terminal(second_done.value().state));
  if (second_done.value().state == JobState::drained) {
    EXPECT_NE(second_done.value().result.error().message.find("drained"), std::string::npos);
    // A drained job never half-pushed its result.
    EXPECT_FALSE(hub.has("hub/comd", std::string("1.0+coMre.") + kSys));
  } else {
    // The first job finished before drain took the lock; the second ran too.
    EXPECT_EQ(second_done.value().state, JobState::succeeded);
  }

  // A draining service turns new work away.
  auto late = svc.submit({"hub/minimd", "1.0", kSys});
  ASSERT_FALSE(late.ok());
  EXPECT_NE(late.error().message.find("draining"), std::string::npos);
}

TEST(ServiceDrainTest, DrainWhilePausedFailsEverythingQueuedDeterministically) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  ASSERT_TRUE(publish(hub, "comd", "hub/comd", "1.0").ok());

  RebuildService svc(hub);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
  svc.pause();
  auto a = svc.submit({"hub/minimd", "1.0", kSys});
  auto b = svc.submit({"hub/comd", "1.0", kSys});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  svc.drain();  // never resumed: both jobs must drain, none may run

  EXPECT_EQ(svc.status(a.value()).value().state, JobState::drained);
  EXPECT_EQ(svc.status(b.value()).value().state, JobState::drained);
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.drained, 2u);
  EXPECT_EQ(stats.succeeded, 0u);
  EXPECT_EQ(hub.stats().pulled_bytes, 0u);  // nothing ever started
}

TEST(ServiceRetryTest, RetryBackoffPastTheDeadlineExpiresInsteadOfRetrying) {
  support::FaultInjector faults;
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  ServiceOptions options;
  options.max_attempts = 5;
  options.sleep_on_backoff = false;  // the skipped backoff is never slept anyway
  options.backoff_base_ms = 60000;  // any retry would land way past the deadline
  options.backoff_max_ms = 120000;  // keep the cap from shrinking it back under
  options.faults = &faults;
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  // Every compile job fails: without a deadline this job would burn through
  // all 5 attempts. The deadline must cut the retry loop short instead.
  faults.fail_every(core::kCompileFaultSite, 1);
  SubmitRequest request{"hub/minimd", "1.0", kSys};
  request.deadline_ms = 2000;  // comfortably survives pickup + one attempt
  auto ticket = svc.submit(request);
  ASSERT_TRUE(ticket.ok());
  auto done = svc.wait(ticket.value());
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().state, JobState::expired);
  EXPECT_EQ(done.value().trace.attempts, 1);  // ran once, never retried
  EXPECT_TRUE(done.value().trace.backoff_ms.empty());  // the delay was not taken
  EXPECT_NE(done.value().result.error().message.find("deadline"), std::string::npos);
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_FALSE(hub.has("hub/minimd", std::string("1.0+coMre.") + kSys));
}

TEST(ServiceTenantTest, RateQuotaThrottlesOnlyTheOverBudgetTenant) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  ServiceOptions options;
  options.tenants["hot"].quota_burst = 3;  // hard lifetime cap: rate 0
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  std::vector<Ticket> hot;
  for (int i = 0; i < 5; ++i) {
    SubmitRequest request{"hub/minimd", "1.0", kSys};
    request.tenant = "hot";
    auto ticket = svc.submit(request);
    ASSERT_TRUE(ticket.ok());
    hot.push_back(ticket.value());
  }
  // First three spent the bucket (whether they coalesced or not); the rest
  // are shed immediately as throttled.
  for (int i = 3; i < 5; ++i) {
    auto shed = svc.status(hot[i]);
    ASSERT_TRUE(shed.ok());
    EXPECT_EQ(shed.value().state, JobState::throttled);
    EXPECT_NE(shed.value().result.error().message.find("quota"), std::string::npos);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(svc.wait(hot[i]).value().state, JobState::succeeded);
  }

  // An unlisted tenant has no quota and sails through.
  SubmitRequest quiet{"hub/minimd", "1.0", kSys};
  quiet.tenant = "quiet";
  auto ok = svc.submit(quiet);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(svc.wait(ok.value()).value().state, JobState::succeeded);

  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.throttled, 2u);
  ASSERT_EQ(stats.tenants.count("hot"), 1u);
  EXPECT_EQ(stats.tenants.at("hot").submitted, 5u);
  EXPECT_EQ(stats.tenants.at("hot").throttled, 2u);
  EXPECT_EQ(stats.tenants.at("quiet").throttled, 0u);
  EXPECT_EQ(stats.tenants.at("quiet").submitted, 1u);
}

TEST(ServiceTenantTest, TokenBucketRefillsAtTheConfiguredRate) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  ServiceOptions options;
  options.tenants["metered"].quota_burst = 1;
  options.tenants["metered"].quota_rate = 100;  // one token per 10 ms
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  SubmitRequest request{"hub/minimd", "1.0", kSys};
  request.tenant = "metered";
  auto first = svc.submit(request);
  ASSERT_TRUE(first.ok());
  EXPECT_NE(svc.status(first.value()).value().state, JobState::throttled);
  auto second = svc.submit(request);  // bucket empty
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(svc.status(second.value()).value().state, JobState::throttled);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // >= 1 token back
  auto third = svc.submit(request);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(svc.status(third.value()).value().state, JobState::throttled);
}

TEST(ServiceTenantTest, WeightedFairDrainKeepsQuietTenantUnstarved) {
  registry::Registry hub;
  // Eight distinct images: coalescing must not merge any of these jobs.
  const std::vector<std::pair<std::string, std::string>> hot_apps = {
      {"hpl", "hub/hpl"},         {"hpcg", "hub/hpcg"},
      {"lulesh", "hub/lulesh"},   {"comd", "hub/comd"},
      {"hpccg", "hub/hpccg"},     {"miniaero", "hub/miniaero"}};
  for (const auto& [app, name] : hot_apps) {
    ASSERT_TRUE(publish(hub, app.c_str(), name, "1.0").ok());
  }
  ASSERT_TRUE(publish(hub, "minife", "hub/minife", "1.0").ok());
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());

  ServiceOptions options;
  options.workers_per_system = 1;  // a strict serial drain exposes the order
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  // A hot tenant floods six *interactive* jobs; a quiet tenant has two
  // *normal* ones. Under the old strict-priority drain the quiet tenant would
  // be served dead last; DRR must interleave the two tenants 1:1.
  svc.pause();
  std::vector<Ticket> hot_tickets, quiet_tickets;
  for (const auto& [app, name] : hot_apps) {
    SubmitRequest request{name, "1.0", kSys, Priority::interactive};
    request.tenant = "hot";
    auto ticket = svc.submit(request);
    ASSERT_TRUE(ticket.ok());
    hot_tickets.push_back(ticket.value());
  }
  for (const char* name : {"hub/minife", "hub/minimd"}) {
    SubmitRequest request{name, "1.0", kSys, Priority::normal};
    request.tenant = "quiet";
    auto ticket = svc.submit(request);
    ASSERT_TRUE(ticket.ok());
    quiet_tickets.push_back(ticket.value());
  }
  ASSERT_EQ(svc.queue_depth(), 8u);
  svc.resume();

  std::vector<double> hot_waits, quiet_waits;
  for (Ticket ticket : hot_tickets) {
    auto done = svc.wait(ticket);
    ASSERT_EQ(done.value().state, JobState::succeeded);
    hot_waits.push_back(done.value().trace.queue_ms);
  }
  for (Ticket ticket : quiet_tickets) {
    auto done = svc.wait(ticket);
    ASSERT_EQ(done.value().state, JobState::succeeded);
    quiet_waits.push_back(done.value().trace.queue_ms);
  }

  // Pickup order == queue_ms order on one worker. In a 1:1 interleave at most
  // two hot jobs run before the quiet tenant's second job; strict priority
  // would put all six first.
  for (double quiet_wait : quiet_waits) {
    int hot_before = 0;
    for (double hot_wait : hot_waits) hot_before += hot_wait < quiet_wait ? 1 : 0;
    EXPECT_LE(hot_before, 2) << "quiet tenant starved behind the hot flood";
  }

  ServiceStats stats = svc.stats();
  ASSERT_EQ(stats.tenants.count("quiet"), 1u);
  EXPECT_EQ(stats.tenants.at("quiet").admitted, 2u);
  EXPECT_GT(stats.tenants.at("quiet").p99_queue_wait_ms, 0.0);
}

TEST(ServiceAutoscaleTest, ScalesUpUnderBacklogAndConvergesBackToMin) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  ASSERT_TRUE(publish(hub, "comd", "hub/comd", "1.0").ok());
  ASSERT_TRUE(publish(hub, "hpccg", "hub/hpccg", "1.0").ok());
  ASSERT_TRUE(publish(hub, "minife", "hub/minife", "1.0").ok());

  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.workers_per_system = 1;
  options.autoscale.enabled = true;
  options.autoscale.min_workers = 1;
  options.autoscale.max_workers = 3;
  options.autoscale.interval_ms = 5;
  options.autoscale.up_backlog_per_worker = 1.0;
  options.autoscale.down_backlog_per_worker = 0.25;
  options.autoscale.cooldown_periods = 2;
  options.metrics = &metrics;
  RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
  EXPECT_EQ(metrics.gauge_value(std::string("service.autoscale.workers.") + kSys), 1.0);

  std::vector<Ticket> tickets;
  for (const char* name : {"hub/minimd", "hub/comd", "hub/hpccg", "hub/minife"}) {
    auto ticket = svc.submit({name, "1.0", kSys});
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  for (Ticket ticket : tickets) {
    EXPECT_EQ(svc.wait(ticket).value().state, JobState::succeeded);
  }

  // The backlog (4 jobs on 1 worker) must have tripped at least one scale-up…
  ServiceStats after_load = svc.stats();
  EXPECT_GE(after_load.scale_ups, 1u);

  // …and an idle service must converge back down to min_workers.
  const std::string gauge = std::string("service.autoscale.workers.") + kSys;
  for (int spin = 0; spin < 400 && metrics.gauge_value(gauge) > 1.0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(metrics.gauge_value(gauge), 1.0);
  ServiceStats settled = svc.stats();
  EXPECT_GE(settled.scale_downs, 1u);
  EXPECT_EQ(settled.scale_downs, settled.scale_ups);  // every grow was undone
}

TEST(ServiceTest, FingerprintIsStableAndSystemSpecific) {
  std::string x86 = fingerprint(sysmodel::SystemProfile::x86_cluster());
  EXPECT_EQ(x86, fingerprint(sysmodel::SystemProfile::x86_cluster()));
  EXPECT_NE(x86, fingerprint(sysmodel::SystemProfile::aarch64_cluster()));
  EXPECT_NE(x86.find(sysmodel::SystemProfile::x86_cluster().arch), std::string::npos);
}

TEST(ServiceTest, AddSystemValidatesItsTarget) {
  registry::Registry hub;
  RebuildService svc(hub);
  TargetSystem missing_profile;
  EXPECT_EQ(svc.add_system("x", missing_profile).error().code, Errc::invalid_argument);

  TargetSystem no_sysenv = make_target();
  no_sysenv.sysenv_tag = "ghost";
  EXPECT_FALSE(svc.add_system("x", no_sysenv).ok());

  ASSERT_TRUE(svc.add_system("x", make_target()).ok());
  EXPECT_EQ(svc.add_system("x", make_target()).error().code, Errc::already_exists);
}

}  // namespace
}  // namespace comt::service
