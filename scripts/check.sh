#!/usr/bin/env bash
# CI entry point: configure, build, run the full test suite, then smoke-test
# the parallel-rebuild and rebuild-service benchmarks (which assert that
# parallel rebuilds are bit-identical, a warm compile cache hits 100%,
# duplicate service requests coalesce, and injected faults recover via
# retry). A second build under ThreadSanitizer reruns the concurrency layer
# (scheduler, registry, rebuild service) and the service smoke bench.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
#   COMT_SKIP_TSAN=1   skip the ThreadSanitizer stage.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== configure =="
cmake -B "$build_dir" -S "$repo"

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== bench smoke =="
"$build_dir/bench/parallel_rebuild" --smoke
"$build_dir/bench/service_throughput" --smoke

if [ "${COMT_SKIP_TSAN:-0}" != "1" ]; then
  tsan_dir="${build_dir}-tsan"
  echo "== tsan build =="
  cmake -B "$tsan_dir" -S "$repo" -DCOMT_SANITIZE=thread
  cmake --build "$tsan_dir" -j "$jobs"

  echo "== tsan test (concurrency layer) =="
  ctest --test-dir "$tsan_dir" --output-on-failure -j "$jobs" \
        -R 'Sched|ThreadPool|Dag|CompileCache|RegistryStress|Service|FaultInjector'

  echo "== tsan bench smoke =="
  "$tsan_dir/bench/service_throughput" --smoke
fi

echo "check.sh: all green"
