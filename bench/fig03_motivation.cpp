// Reproduces Figure 3 (the motivation experiment): LULESH on a single node
// of each system, with system-specific optimizations enabled incrementally —
//   COST   : the generic image (ubuntu base, default toolchain and stack)
//   + libo : replace default libraries with the system's optimized packages
//            (redirect-only; no recompilation)
//   + cxxo : recompile with the system's native toolchain (rebuild)
//   + lto  : enable link-time optimization
//   + pgo  : enable profile-guided optimization (automated feedback loop)
#include <cstdio>
#include <vector>

#include "core/adapters.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

int run_system(const sysmodel::SystemProfile& system, const char* paper_claim) {
  const workloads::AppSpec* app = workloads::find_app("lulesh");
  COMT_ASSERT(app != nullptr, "lulesh missing from corpus");
  const workloads::WorkloadInput& input = app->inputs.front();
  const int nodes = 1;  // Fig. 3 is a single-node experiment

  workloads::Evaluation world(system);
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.error().to_string().c_str());
    return 1;
  }

  struct Step {
    const char* label;
    double seconds;
  };
  std::vector<Step> ladder;

  auto cost = world.run_image(prepared.value().dist_tag, input, nodes);
  if (!cost.ok()) return 1;
  ladder.push_back({"COST (generic image)", cost.value()});

  // libo: optimized packages only, original binaries.
  auto libo_tag = world.redirect_only(*app, prepared.value());
  if (!libo_tag.ok()) {
    std::fprintf(stderr, "libo failed: %s\n", libo_tag.error().to_string().c_str());
    return 1;
  }
  auto libo = world.run_image(libo_tag.value(), input, nodes);
  if (!libo.ok()) return 1;
  ladder.push_back({"+ libo", libo.value()});

  // cxxo: native-toolchain rebuild on top of libo.
  core::LibraryAdapter library_adapter;
  core::ToolchainAdapter toolchain_adapter;
  core::LtoAdapter lto_adapter;
  core::PgoAdapter pgo_adapter;

  auto run_step = [&](const char* label,
                      std::vector<const core::SystemAdapter*> adapters) -> Status {
    auto tag = world.transform(prepared.value(), adapters, input, nodes);
    if (!tag.ok()) return tag.error();
    auto seconds = world.run_image(tag.value(), input, nodes);
    if (!seconds.ok()) return seconds.error();
    ladder.push_back({label, seconds.value()});
    return Status::success();
  };
  if (Status s = run_step("+ cxxo", {&library_adapter, &toolchain_adapter}); !s.ok()) {
    std::fprintf(stderr, "cxxo failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  if (Status s = run_step("+ lto", {&library_adapter, &toolchain_adapter, &lto_adapter});
      !s.ok()) {
    std::fprintf(stderr, "lto failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  if (Status s = run_step("+ pgo", {&library_adapter, &toolchain_adapter, &lto_adapter,
                                    &pgo_adapter});
      !s.ok()) {
    std::fprintf(stderr, "pgo failed: %s\n", s.error().to_string().c_str());
    return 1;
  }

  std::printf("%s (1 node)\n", system.name.c_str());
  double baseline = ladder.front().seconds;
  double previous = baseline;
  for (const Step& step : ladder) {
    std::printf("  %-22s %8.2f s   vs generic: -%5.1f%%   vs previous step: -%5.1f%%\n",
                step.label, step.seconds, (1.0 - step.seconds / baseline) * 100.0,
                (1.0 - step.seconds / previous) * 100.0);
    previous = step.seconds;
  }
  std::printf("  paper: %s\n\n", paper_claim);
  return 0;
}

}  // namespace

int main() {
  std::printf("Figure 3 — LULESH generic image vs incrementally optimized native runs\n\n");
  if (run_system(sysmodel::SystemProfile::x86_cluster(),
                 "libo+cxxo cut up to 50% of time on x86-64; lto adds 17.5%, pgo 9.6%") != 0) {
    return 1;
  }
  if (run_system(sysmodel::SystemProfile::aarch64_cluster(),
                 "libo+cxxo cut up to 72% of time on AArch64") != 0) {
    return 1;
  }
  return 0;
}
