#include "shell/shell.hpp"

#include <cctype>

namespace comt::shell {
namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Reads a $-expansion starting at text[pos] (which is '$') and appends the
/// expanded value; returns the index one past the consumed region.
std::size_t expand_one(std::string_view text, std::size_t pos, const Environment& env,
                       std::string& out) {
  std::size_t i = pos + 1;
  if (i < text.size() && text[i] == '{') {
    std::size_t close = text.find('}', i + 1);
    if (close == std::string_view::npos) {
      out.push_back('$');
      return pos + 1;
    }
    std::string name(text.substr(i + 1, close - i - 1));
    auto it = env.find(name);
    if (it != env.end()) out += it->second;
    return close + 1;
  }
  std::size_t start = i;
  while (i < text.size() && is_name_char(text[i])) ++i;
  if (i == start) {
    out.push_back('$');
    return pos + 1;
  }
  std::string name(text.substr(start, i - start));
  auto it = env.find(name);
  if (it != env.end()) out += it->second;
  return i;
}

}  // namespace

std::string expand_variables(std::string_view text, const Environment& env) {
  std::string out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '$') {
      i = expand_one(text, i, env, out);
    } else if (text[i] == '\\' && i + 1 < text.size() && text[i + 1] == '$') {
      out.push_back('$');
      i += 2;
    } else {
      out.push_back(text[i]);
      ++i;
    }
  }
  return out;
}

Result<std::vector<std::string>> tokenize(std::string_view line, const Environment& env) {
  std::vector<std::string> words;
  std::string current;
  bool in_word = false;
  std::size_t i = 0;
  auto flush = [&] {
    if (in_word) {
      words.push_back(current);
      current.clear();
      in_word = false;
    }
  };
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t') {
      flush();
      ++i;
    } else if (c == '\'') {
      // Single quotes: everything literal until the closing quote.
      std::size_t close = line.find('\'', i + 1);
      if (close == std::string_view::npos) {
        return make_error(Errc::invalid_argument, "unterminated single quote");
      }
      current.append(line.substr(i + 1, close - i - 1));
      in_word = true;
      i = close + 1;
    } else if (c == '"') {
      // Double quotes: expansion allowed, \" and \\ and \$ escapes.
      ++i;
      bool closed = false;
      while (i < line.size()) {
        char d = line[i];
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\\' && i + 1 < line.size() &&
            (line[i + 1] == '"' || line[i + 1] == '\\' || line[i + 1] == '$')) {
          current.push_back(line[i + 1]);
          i += 2;
        } else if (d == '$') {
          i = expand_one(line, i, env, current);
        } else {
          current.push_back(d);
          ++i;
        }
      }
      if (!closed) return make_error(Errc::invalid_argument, "unterminated double quote");
      in_word = true;
    } else if (c == '\\' && i + 1 < line.size()) {
      current.push_back(line[i + 1]);
      in_word = true;
      i += 2;
    } else if (c == '$') {
      // Unquoted expansion undergoes field splitting (POSIX): embedded
      // whitespace in the value separates words ($CFLAGS="-O2 -g" -> 2 args).
      std::string expanded;
      i = expand_one(line, i, env, expanded);
      for (char d : expanded) {
        if (d == ' ' || d == '\t') {
          flush();
        } else {
          current.push_back(d);
          in_word = true;
        }
      }
    } else {
      current.push_back(c);
      in_word = true;
      ++i;
    }
  }
  flush();
  return words;
}

Result<std::vector<Command>> parse_command_list(std::string_view line, const Environment& env) {
  // Split on unquoted `&&` and `;` first, then tokenize each segment.
  std::vector<std::pair<std::string, bool>> segments;  // text, and_next
  std::string current;
  std::size_t i = 0;
  bool in_single = false;
  bool in_double = false;
  while (i < line.size()) {
    char c = line[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (!in_single && !in_double) {
      if (c == '&' && i + 1 < line.size() && line[i + 1] == '&') {
        segments.emplace_back(current, true);
        current.clear();
        i += 2;
        continue;
      }
      if (c == ';') {
        segments.emplace_back(current, false);
        current.clear();
        ++i;
        continue;
      }
    }
    current.push_back(c);
    ++i;
  }
  if (in_single || in_double) {
    return make_error(Errc::invalid_argument, "unterminated quote in command list");
  }
  segments.emplace_back(current, false);

  std::vector<Command> commands;
  for (const auto& [text, and_next] : segments) {
    COMT_TRY(std::vector<std::string> argv, tokenize(text, env));
    if (argv.empty()) continue;
    Command command;
    command.argv = std::move(argv);
    command.and_next = and_next;
    commands.push_back(std::move(command));
  }
  return commands;
}

}  // namespace comt::shell
