#include "toolchain/toolchains.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace comt::toolchain {

int Toolchain::lanes_for(std::string_view march) const {
  if (march.empty()) march = default_march;
  if (march == "native") {
    int widest = 2;
    for (const auto& [name, lanes] : march_lanes) widest = std::max(widest, lanes);
    return widest;
  }
  auto it = march_lanes.find(std::string(march));
  if (it != march_lanes.end()) return it->second;
  auto fallback = march_lanes.find(default_march);
  return fallback == march_lanes.end() ? 2 : fallback->second;
}

bool Toolchain::supports(std::string_view march) const {
  if (march.empty() || march == "native") return true;
  return march_lanes.count(std::string(march)) != 0;
}

std::string Toolchain::resolve_march(std::string_view march_flag) const {
  if (march_flag.empty()) return default_march;
  if (march_flag == "native") {
    // Widest march this toolchain can target. A generic distro compiler
    // conservatively stops below the vendor compiler's reach, which is one
    // of the adaptability gaps coMtainer closes.
    std::string best = default_march;
    int best_lanes = lanes_for(default_march);
    for (const auto& [name, lanes] : march_lanes) {
      if (lanes > best_lanes) {
        best = name;
        best_lanes = lanes;
      }
    }
    return best;
  }
  return std::string(march_flag);
}

std::string make_toolchain_stub(std::string_view toolchain_id) {
  std::string out(kToolchainStubMagic);
  out += toolchain_id;
  out += '\n';
  return out;
}

std::string parse_toolchain_stub(std::string_view content) {
  if (!starts_with(content, kToolchainStubMagic)) return "";
  std::string_view rest = content.substr(kToolchainStubMagic.size());
  std::size_t newline = rest.find('\n');
  return std::string(trim(rest.substr(0, newline)));
}

ToolchainRegistry::ToolchainRegistry(std::vector<Toolchain> toolchains)
    : toolchains_(std::move(toolchains)) {}

const ToolchainRegistry& ToolchainRegistry::builtin() {
  static const ToolchainRegistry registry{[] {
    std::vector<Toolchain> toolchains;

    // The distro default compiler shipped by mainstream base images. Solid
    // baseline codegen, conservative tuning, and it only targets the broadly
    // compatible ISA subsets (this is what generic images get built with).
    Toolchain gnu;
    gnu.id = "gnu-generic";
    gnu.display_name = "GNU GCC (distro default)";
    gnu.target_arch = "any";
    gnu.codegen[0] = 0.40;
    gnu.codegen[1] = 0.80;
    gnu.codegen[2] = 1.00;
    gnu.codegen[3] = 1.03;
    gnu.aggressiveness = 0.10;
    gnu.default_march = "x86-64";
    gnu.march_lanes = {{"x86-64", 2},   {"x86-64-v2", 2}, {"x86-64-v3", 4},
                       {"armv8-a", 2},  {"armv8.1-a", 2}};
    toolchains.push_back(std::move(gnu));

    // Freely redistributable LLVM — the artifact's stand-in for proprietary
    // system compilers. Better vectorizer than distro GCC, reaches wider ISA
    // levels, moderately aggressive.
    Toolchain llvm;
    llvm.id = "llvm";
    llvm.display_name = "LLVM/Clang";
    llvm.target_arch = "any";
    llvm.codegen[0] = 0.42;
    llvm.codegen[1] = 0.84;
    llvm.codegen[2] = 1.04;
    llvm.codegen[3] = 1.08;
    llvm.aggressiveness = 0.45;
    llvm.default_march = "x86-64";
    llvm.march_lanes = {{"x86-64", 2},    {"x86-64-v2", 2}, {"x86-64-v3", 4},
                        {"x86-64-v4", 8}, {"armv8-a", 2},   {"armv8.2-a+sve", 4}};
    toolchains.push_back(std::move(llvm));

    // The x86 system's vendor compiler (Intel-OneAPI-like): strong scalar
    // codegen, full AVX-512 reach, aggressively tuned — which is also what
    // occasionally backfires (hpccg's regression in the paper).
    Toolchain vendor_x86;
    vendor_x86.id = "vendor-x86";
    vendor_x86.display_name = "Vendor x86 compiler";
    vendor_x86.target_arch = "amd64";
    vendor_x86.codegen[0] = 0.45;
    vendor_x86.codegen[1] = 0.95;
    vendor_x86.codegen[2] = 1.20;
    vendor_x86.codegen[3] = 1.38;
    vendor_x86.aggressiveness = 1.0;
    vendor_x86.default_march = "x86-64-v3";
    vendor_x86.march_lanes = {
        {"x86-64", 2}, {"x86-64-v2", 2}, {"x86-64-v3", 4}, {"x86-64-v4", 8}};
    toolchains.push_back(std::move(vendor_x86));

    // The AArch64 system's vendor compiler (Phytium-platform-like). The
    // distro GCC is poorly tuned for this core, so vendor codegen gains are
    // larger than on x86 — matching the paper's bigger AArch64 improvements.
    Toolchain vendor_arm;
    vendor_arm.id = "vendor-aarch64";
    vendor_arm.display_name = "Vendor AArch64 compiler";
    vendor_arm.target_arch = "arm64";
    vendor_arm.codegen[0] = 0.45;
    vendor_arm.codegen[1] = 0.92;
    vendor_arm.codegen[2] = 1.04;
    vendor_arm.codegen[3] = 1.10;
    vendor_arm.aggressiveness = 0.50;
    vendor_arm.default_march = "armv8.2-a+sve";
    vendor_arm.march_lanes = {{"armv8-a", 2}, {"armv8.1-a", 2}, {"armv8.2-a+sve", 2}};
    toolchains.push_back(std::move(vendor_arm));

    return ToolchainRegistry(std::move(toolchains));
  }()};
  return registry;
}

const Toolchain* ToolchainRegistry::find(std::string_view id) const {
  for (const Toolchain& toolchain : toolchains_) {
    if (toolchain.id == id) return &toolchain;
  }
  return nullptr;
}

std::vector<std::string> ToolchainRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(toolchains_.size());
  for (const Toolchain& toolchain : toolchains_) out.push_back(toolchain.id);
  return out;
}

}  // namespace comt::toolchain
