#include "core/verify.hpp"

#include <set>

#include "core/cache.hpp"
#include "pkg/pkg.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace comt::core {

Result<VerifyReport> verify_extended_image(const oci::Layout& layout,
                                           std::string_view tag) {
  VerifyReport report;

  // 1. The blob store itself: every blob matches its digest key.
  if (Status fsck = layout.fsck(); !fsck.ok()) {
    report.problems.push_back("layout fsck: " + fsck.error().to_string());
  }

  COMT_TRY(oci::Image image, layout.find_image(tag));
  COMT_TRY(vfs::Filesystem rootfs, layout.flatten(image));

  // 2. The cache bundle (load_cache verifies every source's digest).
  auto bundle = load_cache(rootfs);
  if (!bundle.ok()) {
    report.problems.push_back("cache: " + bundle.error().to_string());
    return report;
  }
  report.is_extended = true;
  const BuildGraph& graph = bundle.value().models.graph;
  const ImageModel& model = bundle.value().models.image;
  report.graph_nodes = graph.size();
  report.sources_cached = bundle.value().sources.size();

  // 3. Graph structure.
  if (auto order = graph.topological_order(); order.ok()) {
    report.graph_valid = true;
  } else {
    report.problems.push_back("graph: " + order.error().to_string());
  }

  // 4. Source completeness: every non-package leaf must be in the cache.
  COMT_TRY(pkg::Database database, pkg::Database::load(rootfs));
  for (const GraphNode& node : graph.nodes()) {
    if (!node.is_leaf() || node.content_digest.empty()) continue;
    if (bundle.value().sources.count(node.content_digest) != 0) continue;
    // Package-owned inputs are substituted by the target environment.
    if (!database.owner_of(node.path).empty()) continue;
    if (starts_with(node.path, "/usr/lib/") || starts_with(node.path, "/lib/")) continue;
    ++report.sources_missing;
    report.problems.push_back("missing source for graph node " +
                              std::to_string(node.id) + " (" + node.path + ")");
  }

  // 5. Image model consistency.
  report.files_classified = model.files.size();
  report.origin_histogram = model.origin_histogram();
  std::set<std::string> modeled_paths;
  for (const ImageFileEntry& entry : model.files) {
    modeled_paths.insert(entry.path);
    if (entry.origin == FileOrigin::build_process) {
      if (entry.build_node < 0 || entry.build_node >= static_cast<int>(graph.size())) {
        report.problems.push_back("image model: " + entry.path +
                                  " references invalid graph node " +
                                  std::to_string(entry.build_node));
      }
      if (!rootfs.is_regular(entry.path)) {
        report.problems.push_back("image model: build product vanished: " + entry.path);
      }
    }
  }
  // Every non-directory file of the image (outside coMtainer's own layer)
  // must be classified.
  rootfs.walk([&](const std::string& path, const vfs::Node& node) {
    if (node.type == vfs::NodeType::directory) return true;
    if (starts_with(path, "/.coMtainer")) return true;
    if (modeled_paths.count(path) == 0) {
      report.problems.push_back("unclassified file: " + path);
    }
    return true;
  });

  // 6. Entrypoint provenance: the program being shipped should be a build
  // product the graph can regenerate.
  if (!model.entrypoint.empty()) {
    for (const ImageFileEntry& entry : model.files) {
      if (entry.path == model.entrypoint.front() &&
          entry.origin == FileOrigin::build_process) {
        report.entrypoint_is_build_product = true;
      }
    }
    if (!report.entrypoint_is_build_product) {
      report.problems.push_back("entrypoint " + model.entrypoint.front() +
                                " is not a rebuildable build product");
    }
  }
  return report;
}

}  // namespace comt::core
