#include "oci/oci.hpp"

#include "support/sha256.hpp"
#include "tar/tar.hpp"

namespace comt::oci {
namespace {

json::Value annotations_to_json(const std::map<std::string, std::string>& annotations) {
  json::Object object;
  for (const auto& [key, value] : annotations) object.emplace_back(key, json::Value(value));
  return json::Value(std::move(object));
}

std::map<std::string, std::string> annotations_from_json(const json::Value* value) {
  std::map<std::string, std::string> out;
  if (value == nullptr || !value->is_object()) return out;
  for (const auto& [key, v] : value->as_object()) {
    if (v.is_string()) out[key] = v.as_string();
  }
  return out;
}

json::Value string_list_to_json(const std::vector<std::string>& items) {
  json::Array array;
  for (const std::string& item : items) array.emplace_back(item);
  return json::Value(std::move(array));
}

std::vector<std::string> string_list_from_json(const json::Value* value) {
  std::vector<std::string> out;
  if (value == nullptr || !value->is_array()) return out;
  for (const json::Value& item : value->as_array()) {
    if (item.is_string()) out.push_back(item.as_string());
  }
  return out;
}

}  // namespace

Digest Digest::of_blob(std::string_view blob) {
  return Digest{"sha256:" + Sha256::hex_digest(blob)};
}

json::Value Descriptor::to_json() const {
  json::Object object;
  object.emplace_back("mediaType", json::Value(media_type));
  object.emplace_back("digest", json::Value(digest.value));
  object.emplace_back("size", json::Value(size));
  if (!annotations.empty()) {
    object.emplace_back("annotations", annotations_to_json(annotations));
  }
  return json::Value(std::move(object));
}

Result<Descriptor> Descriptor::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return make_error(Errc::invalid_argument, "descriptor: not an object");
  }
  Descriptor out;
  out.media_type = value.get_string("mediaType");
  out.digest.value = value.get_string("digest");
  out.size = static_cast<std::uint64_t>(value.get_int("size"));
  out.annotations = annotations_from_json(value.find("annotations"));
  if (out.digest.empty()) {
    return make_error(Errc::invalid_argument, "descriptor: missing digest");
  }
  return out;
}

json::Value ImageConfig::to_json() const {
  json::Object runtime;
  runtime.emplace_back("Env", string_list_to_json(config.env));
  runtime.emplace_back("Entrypoint", string_list_to_json(config.entrypoint));
  runtime.emplace_back("Cmd", string_list_to_json(config.cmd));
  runtime.emplace_back("WorkingDir", json::Value(config.working_dir));
  {
    json::Object labels;
    for (const auto& [key, value] : config.labels) labels.emplace_back(key, json::Value(value));
    runtime.emplace_back("Labels", json::Value(std::move(labels)));
  }

  json::Array diff_ids;
  for (const Digest& id : this->diff_ids) diff_ids.emplace_back(id.value);
  json::Object rootfs;
  rootfs.emplace_back("type", json::Value("layers"));
  rootfs.emplace_back("diff_ids", json::Value(std::move(diff_ids)));

  json::Array history_json;
  for (const std::string& line : history) {
    json::Object entry;
    entry.emplace_back("created_by", json::Value(line));
    history_json.emplace_back(std::move(entry));
  }

  json::Object object;
  object.emplace_back("architecture", json::Value(architecture));
  object.emplace_back("os", json::Value(os));
  object.emplace_back("config", json::Value(std::move(runtime)));
  object.emplace_back("rootfs", json::Value(std::move(rootfs)));
  object.emplace_back("history", json::Value(std::move(history_json)));
  return json::Value(std::move(object));
}

Result<ImageConfig> ImageConfig::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return make_error(Errc::invalid_argument, "image config: not an object");
  }
  ImageConfig out;
  out.architecture = value.get_string("architecture", "amd64");
  out.os = value.get_string("os", "linux");
  if (const json::Value* runtime = value.find("config"); runtime != nullptr) {
    out.config.env = string_list_from_json(runtime->find("Env"));
    out.config.entrypoint = string_list_from_json(runtime->find("Entrypoint"));
    out.config.cmd = string_list_from_json(runtime->find("Cmd"));
    out.config.working_dir = runtime->get_string("WorkingDir", "/");
    if (const json::Value* labels = runtime->find("Labels");
        labels != nullptr && labels->is_object()) {
      for (const auto& [key, v] : labels->as_object()) {
        if (v.is_string()) out.config.labels[key] = v.as_string();
      }
    }
  }
  if (const json::Value* rootfs = value.find("rootfs"); rootfs != nullptr) {
    for (const std::string& id : string_list_from_json(rootfs->find("diff_ids"))) {
      out.diff_ids.push_back(Digest{id});
    }
  }
  if (const json::Value* history = value.find("history");
      history != nullptr && history->is_array()) {
    for (const json::Value& entry : history->as_array()) {
      out.history.push_back(entry.get_string("created_by"));
    }
  }
  return out;
}

json::Value Manifest::to_json() const {
  json::Object object;
  object.emplace_back("schemaVersion", json::Value(2));
  object.emplace_back("mediaType", json::Value(kMediaTypeManifest));
  object.emplace_back("config", config.to_json());
  json::Array layers_json;
  for (const Descriptor& layer : layers) layers_json.push_back(layer.to_json());
  object.emplace_back("layers", json::Value(std::move(layers_json)));
  if (!annotations.empty()) {
    object.emplace_back("annotations", annotations_to_json(annotations));
  }
  return json::Value(std::move(object));
}

Result<Manifest> Manifest::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return make_error(Errc::invalid_argument, "manifest: not an object");
  }
  Manifest out;
  const json::Value* config = value.find("config");
  if (config == nullptr) return make_error(Errc::invalid_argument, "manifest: missing config");
  COMT_TRY(out.config, Descriptor::from_json(*config));
  if (const json::Value* layers = value.find("layers");
      layers != nullptr && layers->is_array()) {
    for (const json::Value& layer : layers->as_array()) {
      COMT_TRY(Descriptor descriptor, Descriptor::from_json(layer));
      out.layers.push_back(std::move(descriptor));
    }
  }
  out.annotations = annotations_from_json(value.find("annotations"));
  return out;
}

Layout::Layout() : blobs_(std::make_shared<store::MemStore>(), std::string(kBlobKeyPrefix)) {}

Layout::Layout(const Layout& other)
    : blobs_(std::make_shared<store::MemStore>(), std::string(kBlobKeyPrefix)),
      index_(other.index_),
      pins_(other.pins_),
      faults_(other.faults_) {
  copy_blobs_from(other);
}

Layout& Layout::operator=(const Layout& other) {
  if (this == &other) return *this;
  blobs_ = store::CasStore(std::make_shared<store::MemStore>(), std::string(kBlobKeyPrefix));
  index_ = other.index_;
  pins_ = other.pins_;
  faults_ = other.faults_;
  durable_index_ = false;
  copy_blobs_from(other);
  return *this;
}

void Layout::copy_blobs_from(const Layout& other) {
  for (const std::string& digest : other.blobs_.digests()) {
    auto bytes = other.blobs_.get_unverified(digest);
    COMT_ASSERT(bytes.ok(), "layout copy: blob read failed");
    // put_at, not put: damaged bytes (torn blobs fsck has yet to see) must
    // survive the copy under their original digest, not move to a new one.
    COMT_ASSERT(blobs_.put_at(digest, std::move(bytes).value()).ok(),
                "layout copy: blob write failed");
  }
}

Status Layout::attach(std::shared_ptr<store::KvStore> backend) {
  COMT_ASSERT(backend != nullptr, "layout: attach(null backend)");
  store::CasStore fresh(backend, std::string(kBlobKeyPrefix));

  // Index entries already durable in the backend come first (they are the
  // older state); this layout's in-memory entries overlay them.
  std::vector<std::pair<std::string, Digest>> merged;
  auto upsert = [&merged](const std::string& tag, const Digest& digest) {
    for (auto& [existing_tag, existing] : merged) {
      if (existing_tag == tag) {
        existing = digest;
        return;
      }
    }
    merged.emplace_back(tag, digest);
  };
  if (auto index_text = backend->get(kIndexKey); index_text.ok()) {
    COMT_TRY(json::Value index, json::parse(index_text.value()));
    const json::Value* manifests = index.find("manifests");
    if (manifests == nullptr || !manifests->is_array()) {
      return make_error(Errc::corrupt, "layout: index.json missing manifests");
    }
    for (const json::Value& entry : manifests->as_array()) {
      COMT_TRY(Descriptor descriptor, Descriptor::from_json(entry));
      auto ref = descriptor.annotations.find(std::string(kRefNameAnnotation));
      upsert(ref == descriptor.annotations.end() ? descriptor.digest.value : ref->second,
             descriptor.digest);
    }
  }
  for (const std::string& digest : blobs_.digests()) {
    COMT_TRY(std::string bytes, blobs_.get_unverified(digest));
    COMT_TRY_STATUS(fresh.put_at(digest, std::move(bytes)));
  }
  for (const auto& [tag, digest] : index_) upsert(tag, digest);

  blobs_ = std::move(fresh);
  index_ = std::move(merged);
  durable_index_ = true;
  return persist_index();
}

Status Layout::persist_index() {
  if (!durable_index_) return Status::success();
  store::KvStore& backend = blobs_.backend();
  COMT_TRY_STATUS(backend.put(kOciLayoutKey, std::string(kOciLayoutContent)));
  return backend.put(kIndexKey, json::serialize(index_json_impl(/*lenient=*/true)));
}

Descriptor Layout::put_blob(std::string blob, std::string_view media_type) {
  Descriptor descriptor;
  descriptor.media_type = std::string(media_type);
  descriptor.digest = Digest::of_blob(blob);
  descriptor.size = blob.size();
  if (faults_ != nullptr) {
    if (auto torn = faults_->check_torn(kBlobPutSite, blob.size()); torn.has_value()) {
      // The medium persisted a prefix under the full content's digest — the
      // classic torn blob fsck must find — and the process dies here.
      COMT_ASSERT(blobs_.put_at(descriptor.digest.value, blob.substr(0, *torn)).ok(),
                  "layout: torn blob write failed");
      throw support::CrashInjected{std::string(kBlobPutSite)};
    }
  }
  // put_at under the precomputed digest: a re-put of the same digest is
  // normally a no-op rewrite under content addressing — but it heals a blob
  // an earlier torn write left truncated under this digest.
  COMT_ASSERT(blobs_.put_at(descriptor.digest.value, std::move(blob)).ok(),
              "layout: blob store put failed");
  return descriptor;
}

void Layout::set_blob_bytes(const Digest& digest, std::string bytes) {
  COMT_ASSERT(has_blob(digest), ("set_blob_bytes: no such blob: " + digest.value).c_str());
  COMT_ASSERT(blobs_.put_at(digest.value, std::move(bytes)).ok(),
              "set_blob_bytes: blob store put failed");
}

Result<std::string> Layout::get_blob(const Digest& digest) const {
  // Unverified on purpose: fsck (and its tests) must be able to read damaged
  // bytes back to classify them. Verification belongs to fsck and to
  // CasStore::get users.
  auto bytes = blobs_.get_unverified(digest.value);
  if (!bytes.ok()) {
    return make_error(Errc::not_found, "no such blob: " + digest.value);
  }
  return bytes;
}

std::uint64_t Layout::total_blob_bytes() const { return blobs_.total_bytes(); }

std::vector<Digest> Layout::blob_digests() const {
  std::vector<Digest> out;
  for (std::string& digest : blobs_.digests()) out.push_back(Digest{std::move(digest)});
  return out;
}

std::uint64_t Layout::remove_blob(const Digest& digest) {
  if (is_pinned(digest)) return 0;
  return blobs_.erase(digest.value);
}

void Layout::pin_blob(const Digest& digest) { ++pins_[digest]; }

void Layout::unpin_blob(const Digest& digest) {
  auto it = pins_.find(digest);
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
}

Result<Digest> Layout::add_manifest(const Manifest& manifest, std::string_view tag) {
  if (!has_blob(manifest.config.digest)) {
    return make_error(Errc::not_found,
                      "manifest config blob missing: " + manifest.config.digest.value);
  }
  for (const Descriptor& layer : manifest.layers) {
    if (!has_blob(layer.digest)) {
      return make_error(Errc::not_found, "manifest layer blob missing: " + layer.digest.value);
    }
  }
  Descriptor descriptor =
      put_blob(json::serialize(manifest.to_json()), kMediaTypeManifest);
  for (auto& [existing_tag, digest] : index_) {
    if (existing_tag == tag) {
      digest = descriptor.digest;
      COMT_TRY_STATUS(persist_index());
      return descriptor.digest;
    }
  }
  index_.emplace_back(std::string(tag), descriptor.digest);
  COMT_TRY_STATUS(persist_index());
  return descriptor.digest;
}

std::vector<std::string> Layout::tags() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [tag, digest] : index_) out.push_back(tag);
  return out;
}

std::vector<std::pair<std::string, Digest>> Layout::index_entries() const {
  return index_;
}

void Layout::tag_manifest(std::string_view tag, const Digest& manifest_digest) {
  for (auto& [existing_tag, digest] : index_) {
    if (existing_tag == tag) {
      digest = manifest_digest;
      (void)persist_index();
      return;
    }
  }
  index_.emplace_back(std::string(tag), manifest_digest);
  (void)persist_index();
}

bool Layout::remove_tag(std::string_view tag) {
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    if (it->first == tag) {
      index_.erase(it);
      (void)persist_index();
      return true;
    }
  }
  return false;
}

Result<Image> Layout::find_image(std::string_view tag) const {
  for (const auto& [existing_tag, digest] : index_) {
    if (existing_tag == tag) return load_image(digest);
  }
  return make_error(Errc::not_found, "no such tag: " + std::string(tag));
}

Result<Image> Layout::load_image(const Digest& manifest_digest) const {
  COMT_TRY(std::string manifest_blob, get_blob(manifest_digest));
  COMT_TRY(json::Value manifest_doc, json::parse(manifest_blob));
  COMT_TRY(Manifest manifest, Manifest::from_json(manifest_doc));
  COMT_TRY(std::string config_blob, get_blob(manifest.config.digest));
  COMT_TRY(json::Value config_doc, json::parse(config_blob));
  COMT_TRY(ImageConfig config, ImageConfig::from_json(config_doc));
  return Image{manifest_digest, std::move(manifest), std::move(config)};
}

Result<vfs::Filesystem> Layout::flatten(const Image& image) const {
  vfs::Filesystem root;
  for (const Descriptor& layer : image.manifest.layers) {
    COMT_TRY(vfs::Filesystem tree, read_layer(layer));
    COMT_TRY_STATUS(vfs::apply_layer(root, tree));
  }
  return root;
}

Descriptor Layout::put_layer(const vfs::Filesystem& tree) {
  return put_blob(tar::pack(tree), kMediaTypeLayer);
}

Result<vfs::Filesystem> Layout::read_layer(const Descriptor& layer) const {
  COMT_TRY(std::string blob, get_blob(layer.digest));
  return tar::unpack(blob);
}

Result<Image> Layout::append_layer(const Image& base, const vfs::Filesystem& layer_tree,
                                   std::string_view created_by, std::string_view tag) {
  Descriptor layer = put_layer(layer_tree);

  ImageConfig config = base.config;
  config.diff_ids.push_back(layer.digest);
  config.history.emplace_back(created_by);
  Descriptor config_descriptor =
      put_blob(json::serialize(config.to_json()), kMediaTypeConfig);

  Manifest manifest = base.manifest;
  manifest.config = config_descriptor;
  manifest.layers.push_back(layer);
  COMT_TRY(Digest manifest_digest, add_manifest(manifest, tag));
  return Image{manifest_digest, std::move(manifest), std::move(config)};
}

Result<Image> Layout::create_image(const ImageConfig& config,
                                   const std::vector<vfs::Filesystem>& layers,
                                   std::string_view tag) {
  Manifest manifest;
  ImageConfig stored = config;
  stored.diff_ids.clear();
  for (const vfs::Filesystem& tree : layers) {
    Descriptor layer = put_layer(tree);
    stored.diff_ids.push_back(layer.digest);
    manifest.layers.push_back(layer);
  }
  // Preserve provided history if it matches the layer count; otherwise
  // synthesize one line per layer.
  if (config.history.size() == layers.size()) {
    stored.history = config.history;
  } else {
    stored.history.assign(layers.size(), "layer");
  }
  manifest.config = put_blob(json::serialize(stored.to_json()), kMediaTypeConfig);
  COMT_TRY(Digest manifest_digest, add_manifest(manifest, tag));
  return Image{manifest_digest, std::move(manifest), std::move(stored)};
}

json::Value Layout::index_json() const { return index_json_impl(/*lenient=*/false); }

json::Value Layout::index_json_impl(bool lenient) const {
  json::Array manifests;
  for (const auto& [tag, digest] : index_) {
    auto blob_size = blobs_.size(digest.value);
    // The strict path is the API contract (an index must reference stored
    // manifests); the lenient path serves persist_index, which must be able
    // to write through an index fsck has yet to cut dangling tags from.
    if (!lenient) COMT_ASSERT(blob_size.ok(), "index references missing manifest blob");
    Descriptor descriptor;
    descriptor.media_type = std::string(kMediaTypeManifest);
    descriptor.digest = digest;
    descriptor.size = blob_size.ok() ? blob_size.value() : 0;
    descriptor.annotations[std::string(kRefNameAnnotation)] = tag;
    manifests.push_back(descriptor.to_json());
  }
  json::Object object;
  object.emplace_back("schemaVersion", json::Value(2));
  object.emplace_back("mediaType", json::Value(kMediaTypeIndex));
  object.emplace_back("manifests", json::Value(std::move(manifests)));
  return json::Value(std::move(object));
}

Status Layout::fsck() const {
  for (const Digest& digest : blob_digests()) {
    COMT_TRY(std::string blob, blobs_.get_unverified(digest.value));
    if (Digest::of_blob(blob) != digest) {
      return make_error(Errc::corrupt, "blob content does not match digest " + digest.value);
    }
  }
  for (const auto& [tag, digest] : index_) {
    if (!has_blob(digest)) {
      return make_error(Errc::corrupt, "index tag '" + tag + "' references missing blob");
    }
  }
  return Status::success();
}

}  // namespace comt::oci
