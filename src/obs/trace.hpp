// Structured tracing for the rebuild pipeline.
//
// A Tracer collects nestable spans — named intervals with ids, parent ids,
// steady-clock timestamps and key/value annotations — from many threads at
// once. Each thread writes completed spans into its own buffer (registered
// with the tracer on first use), so emission never contends across threads;
// only export walks every buffer. Spans are exported in Chrome's Trace Event
// Format ("X" complete events), so a rebuild trace opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Spans are RAII: Tracer::span() returns a Span that records its duration
// when it ends (explicitly or at destruction). A default-constructed Span is
// inert, which is how call sites stay branch-free when no tracer is attached
// (see maybe_span). Parent links are explicit span ids, not thread state, so
// a span begun on a service thread can parent compile-job spans running on
// pool workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/json.hpp"
#include "obs/stopwatch.hpp"

namespace comt::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One completed span, as stored in a thread buffer and exported.
struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  std::string category;  ///< pipeline phase ("resolve", "compile", "blob-push", …)
  double start_us = 0;   ///< steady-clock microseconds since the tracer's epoch
  double dur_us = 0;
  std::uint32_t tid = 0;  ///< tracer-local thread index (stable per thread)
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer;

/// RAII handle for an open span. Move-only; ends on destruction. A
/// default-constructed Span is inert: every operation is a no-op and id() is
/// kNoSpan, so instrumented code need not branch on "is tracing enabled".
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  bool active() const { return tracer_ != nullptr; }
  SpanId id() const { return record_.id; }

  void annotate(std::string_view key, std::string_view value);
  void annotate(std::string_view key, std::uint64_t value);

  /// Records the span into its thread's buffer. Idempotent; called by the
  /// destructor. End a span on whichever thread finishes the work — the
  /// record lands in that thread's buffer.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record)
      : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

/// Thread-safe span collector with per-thread buffers.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span. The returned Span must end (go out of scope) before the
  /// tracer is destroyed.
  Span span(std::string_view name, SpanId parent = kNoSpan,
            std::string_view category = "");

  /// All completed spans, sorted by (start time, id). Concurrent emitters may
  /// add more spans after the snapshot returns.
  std::vector<SpanRecord> snapshot() const;

  std::size_t span_count() const;

  /// The trace as a Chrome Trace Event Format document:
  /// {"traceEvents": [{"name", "cat", "ph":"X", "ts", "dur", "pid", "tid",
  /// "args": {"id", "parent", …annotations}}, …], "displayTimeUnit": "ms"}.
  /// Deterministic given the spans (sorted, insertion-ordered objects).
  json::Value trace_events() const;

  /// trace_events() serialized compactly — write this to a .json file and
  /// open it in chrome://tracing / Perfetto.
  std::string chrome_trace_json() const;

 private:
  friend class Span;
  struct ThreadBuffer {
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<SpanRecord> records;
  };

  ThreadBuffer& local_buffer();
  void record(SpanRecord record);
  double now_us() const { return epoch_.elapsed_us(); }

  const std::uint64_t tracer_id_;  ///< process-unique, never reused
  Stopwatch epoch_;
  std::atomic<SpanId> next_span_{1};
  std::atomic<std::uint32_t> next_tid_{1};
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Opens a span on a possibly-absent tracer: nullptr yields an inert Span.
/// The standard idiom at instrumentation sites.
inline Span maybe_span(Tracer* tracer, std::string_view name, SpanId parent = kNoSpan,
                       std::string_view category = "") {
  return tracer == nullptr ? Span() : tracer->span(name, parent, category);
}

}  // namespace comt::obs
