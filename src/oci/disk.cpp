#include "oci/disk.hpp"

#include <filesystem>
#include <fstream>

#include "support/strings.hpp"

namespace comt::oci {
namespace {

namespace stdfs = std::filesystem;

Status write_file(const stdfs::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(Errc::failed, "cannot open for writing: " + path.string());
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return make_error(Errc::failed, "short write: " + path.string());
  return Status::success();
}

Result<std::string> read_file(const stdfs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error(Errc::not_found, "cannot open: " + path.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

/// blobs/sha256/<hex> path for a digest of the form "sha256:<hex>".
Result<stdfs::path> blob_path(const stdfs::path& root, const Digest& digest) {
  std::vector<std::string> parts = split(digest.value, ':');
  if (parts.size() != 2 || parts[0] != "sha256" || parts[1].empty()) {
    return make_error(Errc::invalid_argument, "malformed digest: " + digest.value);
  }
  return root / "blobs" / parts[0] / parts[1];
}

Status save_blob(const Layout& layout, const stdfs::path& root, const Digest& digest) {
  COMT_TRY(std::string content, layout.get_blob(digest));
  COMT_TRY(stdfs::path path, blob_path(root, digest));
  return write_file(path, content);
}

}  // namespace

Status save_layout(const Layout& layout, const std::string& directory) {
  stdfs::path root(directory);
  std::error_code ec;
  stdfs::create_directories(root / "blobs" / "sha256", ec);
  if (ec) {
    return make_error(Errc::failed, "cannot create " + directory + ": " + ec.message());
  }
  COMT_TRY_STATUS(write_file(root / "oci-layout", R"({"imageLayoutVersion":"1.0.0"})"));
  COMT_TRY_STATUS(write_file(root / "index.json", json::serialize(layout.index_json())));

  for (const std::string& tag : layout.tags()) {
    COMT_TRY(Image image, layout.find_image(tag));
    COMT_TRY_STATUS(save_blob(layout, root, image.manifest_digest));
    COMT_TRY_STATUS(save_blob(layout, root, image.manifest.config.digest));
    for (const Descriptor& layer : image.manifest.layers) {
      COMT_TRY_STATUS(save_blob(layout, root, layer.digest));
    }
  }
  return Status::success();
}

Result<Layout> load_layout(const std::string& directory) {
  stdfs::path root(directory);
  COMT_TRY(std::string index_text, read_file(root / "index.json"));
  COMT_TRY(json::Value index, json::parse(index_text));
  const json::Value* manifests = index.find("manifests");
  if (manifests == nullptr || !manifests->is_array()) {
    return make_error(Errc::corrupt, directory + "/index.json: missing manifests");
  }

  Layout layout;
  for (const json::Value& entry : manifests->as_array()) {
    COMT_TRY(Descriptor descriptor, Descriptor::from_json(entry));
    COMT_TRY(stdfs::path manifest_path, blob_path(root, descriptor.digest));
    COMT_TRY(std::string manifest_blob, read_file(manifest_path));
    if (Digest::of_blob(manifest_blob) != descriptor.digest) {
      return make_error(Errc::corrupt,
                        "blob does not match its digest: " + descriptor.digest.value);
    }
    COMT_TRY(json::Value manifest_doc, json::parse(manifest_blob));
    COMT_TRY(Manifest manifest, Manifest::from_json(manifest_doc));

    // Pull in the config and layer blobs first; add_manifest checks them.
    for (const Descriptor& blob :
         [&] {
           std::vector<Descriptor> all = manifest.layers;
           all.push_back(manifest.config);
           return all;
         }()) {
      if (layout.has_blob(blob.digest)) continue;
      COMT_TRY(stdfs::path path, blob_path(root, blob.digest));
      COMT_TRY(std::string content, read_file(path));
      if (Digest::of_blob(content) != blob.digest) {
        return make_error(Errc::corrupt,
                          "blob does not match its digest: " + blob.digest.value);
      }
      layout.put_blob(std::move(content), blob.media_type);
    }
    auto ref = descriptor.annotations.find(std::string(kRefNameAnnotation));
    std::string tag = ref == descriptor.annotations.end()
                          ? descriptor.digest.value
                          : ref->second;
    COMT_TRY(Digest digest, layout.add_manifest(manifest, tag));
    if (digest != descriptor.digest) {
      return make_error(Errc::corrupt,
                        "re-serialized manifest digest mismatch for tag " + tag);
    }
  }
  return layout;
}

}  // namespace comt::oci
