#include "json/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace comt::json {

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::get_string(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::move(fallback);
}

std::int64_t Value::get_int(std::string_view key, std::int64_t fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

void Value::set(std::string key, Value value) {
  COMT_ASSERT(is_object(), "json: set() on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Value::push_back(Value value) {
  COMT_ASSERT(is_array(), "json: push_back() on non-array");
  array_.push_back(std::move(value));
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::null:
      return true;
    case Type::boolean:
      return bool_ == other.bool_;
    case Type::number:
      return number_ == other.number_;
    case Type::string:
      return string_ == other.string_;
    case Type::array:
      return array_ == other.array_;
    case Type::object:
      return object_ == other.object_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    skip_whitespace();
    COMT_TRY(Value root, parse_value());
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return root;
  }

 private:
  Error fail(std::string message) const {
    return make_error(Errc::invalid_argument,
                      "json parse error at offset " + std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        COMT_TRY(std::string s, parse_string());
        return Value(std::move(s));
      }
      case 't':
        return parse_literal("true", Value(true));
      case 'f':
        return parse_literal("false", Value(false));
      case 'n':
        return parse_literal("null", Value(nullptr));
      default:
        return parse_number();
    }
  }

  Result<Value> parse_literal(std::string_view word, Value value) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return value;
  }

  Result<Value> parse_number() {
    std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    double out = 0;
    auto [end, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc() || end != text_.data() + pos_) return fail("malformed number");
    return Value(out);
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs are
            // out of scope for the documents this library handles).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return fail("unknown escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  Result<Value> parse_array() {
    consume('[');
    Array items;
    skip_whitespace();
    if (consume(']')) return Value(std::move(items));
    while (true) {
      skip_whitespace();
      COMT_TRY(Value item, parse_value());
      items.push_back(std::move(item));
      skip_whitespace();
      if (consume(']')) return Value(std::move(items));
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_object() {
    consume('{');
    Object members;
    skip_whitespace();
    if (consume('}')) return Value(std::move(members));
    while (true) {
      skip_whitespace();
      COMT_TRY(std::string key, parse_string());
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_whitespace();
      COMT_TRY(Value value, parse_value());
      members.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (consume('}')) return Value(std::move(members));
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_into(std::string& out, double d) {
  // Integers (the common case in OCI documents) serialize without a decimal
  // point so round-trips are stable.
  if (d == std::floor(d) && std::abs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void serialize_into(std::string& out, const Value& value, int indent, int depth) {
  auto newline_indent = [&](int levels) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * levels, ' ');
  };
  switch (value.type()) {
    case Type::null:
      out += "null";
      return;
    case Type::boolean:
      out += value.as_bool() ? "true" : "false";
      return;
    case Type::number:
      number_into(out, value.as_number());
      return;
    case Type::string:
      escape_into(out, value.as_string());
      return;
    case Type::array: {
      const Array& items = value.as_array();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(depth + 1);
        serialize_into(out, items[i], indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back(']');
      return;
    }
    case Type::object: {
      const Object& members = value.as_object();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(depth + 1);
        escape_into(out, members[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        serialize_into(out, members[i].second, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

std::string serialize(const Value& value) {
  std::string out;
  serialize_into(out, value, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string serialize_pretty(const Value& value) {
  std::string out;
  serialize_into(out, value, /*indent=*/2, /*depth=*/0);
  return out;
}

}  // namespace comt::json
