// GCC-style command-line option model.
//
// The paper's compilation model for .o/.so nodes is "structural data
// representing GCC command lines", derived (the authors note, non-trivially)
// from the GCC manual. This module reproduces that model: a declarative
// option table covering GCC's option classes — plain flags, negatable -f/-m
// flags, joined arguments (-O2, -Ifoo, -falign-functions=16), separate
// arguments (-o out), joined-or-separate (-I foo) and -Wl,/-Xlinker
// passthrough — plus a parser that turns an argv into a structured
// CompileCommand and a renderer that turns a (possibly transformed)
// CompileCommand back into an argv.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "support/error.hpp"

namespace comt::toolchain {

/// How an option consumes its argument.
enum class OptionKind {
  flag,                ///< -c, -shared: no argument
  negatable,           ///< -ffast-math / -fno-fast-math, -mavx2 / -mno-avx2
  joined,              ///< -DNAME, -O2, -Ifoo (argument glued to the option)
  separate,            ///< -o out, -x c (argument is the next argv element)
  joined_or_separate,  ///< -Ifoo or -I foo
  joined_eq,           ///< -std=c++17, -march=native (argument after '=')
};

/// Broad grouping used by analyses/transformations (e.g. the cxxo adapter
/// rewrites machine options; the LTO adapter touches optimization options).
enum class OptionCategory {
  output,        ///< -o, -c, -S, -E, pipeline control
  language,      ///< -std, -x, -ansi
  preprocessor,  ///< -D, -U, -I, -include, -MD...
  optimization,  ///< -O*, -f* codegen transforms
  machine,       ///< -m*, -march, -mtune
  warning,       ///< -W* diagnostics
  debug,         ///< -g*
  linker,        ///< -l, -L, -shared, -static, -Wl,...
  directory,     ///< -B, --sysroot
  profile,       ///< -fprofile-*, coverage
  lto,           ///< -flto and friends
  other,
};

const char* category_name(OptionCategory category);

/// One row of the option table.
struct OptionSpec {
  std::string_view name;  ///< including leading dash(es), without "no-"
  OptionKind kind;
  OptionCategory category;
};

/// The option table for a GCC-compatible driver.
class OptionTable {
 public:
  /// The built-in table modelling GCC's option set.
  static const OptionTable& gcc();

  /// Exact-name lookup (for flag/negatable/separate/joined_eq kinds).
  const OptionSpec* find(std::string_view name) const;

  /// Longest-prefix lookup for joined options ("-DFOO" -> "-D").
  const OptionSpec* find_joined_prefix(std::string_view arg) const;

  std::size_t size() const { return specs_.size(); }

 private:
  explicit OptionTable(std::vector<OptionSpec> specs);

  std::vector<OptionSpec> specs_;
  std::map<std::string_view, const OptionSpec*> by_name_;
  // Joined-prefix specs sorted by descending name length for longest match.
  std::vector<const OptionSpec*> joined_;
};

/// What the driver is being asked to produce.
enum class DriverMode {
  preprocess,  ///< -E
  compile,     ///< -S
  assemble,    ///< -c  (source -> object)
  link,        ///< default: produce an executable or shared library
};

const char* driver_mode_name(DriverMode mode);

/// A parsed option occurrence that the structured fields don't individually
/// model (most -f/-m/-W flags); preserved verbatim so that re-rendering a
/// command loses nothing.
struct GenericOption {
  std::string name;     ///< spec name, e.g. "-ffast-math" (without "no-")
  bool enabled = true;  ///< false for the -fno-/-mno-/-Wno- form
  std::string value;    ///< argument for joined/eq kinds
  OptionCategory category = OptionCategory::other;

  bool operator==(const GenericOption&) const = default;
};

/// Structured representation of one compiler invocation — the paper's
/// compilation model for .o/.so/executable nodes.
struct CompileCommand {
  std::string program;  ///< argv[0] as invoked (e.g. "g++", "/usr/bin/gcc")
  DriverMode mode = DriverMode::link;
  std::vector<std::string> inputs;  ///< positional inputs in order
  std::string output;               ///< -o value ("" = derive a.out/x.o)

  int opt_level = 0;          ///< 0..3; -Os maps to 2 with size_opt
  bool size_opt = false;      ///< -Os
  std::string march;          ///< -march= value ("" = target default)
  std::string mtune;          ///< -mtune= value
  std::string std_version;    ///< -std= value
  bool debug = false;         ///< any -g
  bool pic = false;           ///< -fPIC/-fpic
  bool shared = false;        ///< -shared
  bool static_link = false;   ///< -static

  bool lto = false;                 ///< -flto (any form)
  std::string lto_value;            ///< "auto", "thin", job count…
  bool profile_generate = false;    ///< -fprofile-generate
  std::string profile_use;          ///< -fprofile-use[=path] ("" = off)

  std::vector<std::string> include_dirs;   ///< -I
  std::vector<std::string> defines;        ///< -D (raw NAME[=VALUE])
  std::vector<std::string> undefines;      ///< -U
  std::vector<std::string> library_dirs;   ///< -L
  std::vector<std::string> libraries;      ///< -l values ("m", "blas", …)
  std::vector<std::string> linker_args;    ///< -Wl, segments, split on commas
  std::vector<GenericOption> generic;      ///< everything else, in order
  std::vector<std::string> unrecognized;   ///< options not in the table

  /// True if any generic flag with the given name is enabled (last wins).
  bool flag_enabled(std::string_view name) const;

  /// Removes all occurrences of a generic flag; returns how many were erased.
  std::size_t erase_generic(std::string_view name);

  /// Re-renders an argv equivalent to the parsed command (modulo option
  /// spelling normalization: joined_or_separate renders joined, = forms keep
  /// their =). parse(render(cmd)) == cmd is the round-trip invariant.
  std::vector<std::string> render() const;

  json::Value to_json() const;
  static Result<CompileCommand> from_json(const json::Value& value);

  bool operator==(const CompileCommand&) const = default;
};

/// Parses a compiler argv (argv[0] = program) against `table`.
Result<CompileCommand> parse_command(std::span<const std::string> argv,
                                     const OptionTable& table = OptionTable::gcc());

}  // namespace comt::toolchain
