#include "core/backend.hpp"

#include <set>

#include "buildexec/builder.hpp"
#include "buildexec/container.hpp"
#include "core/frontend.hpp"
#include "support/strings.hpp"
#include "toolchain/driver.hpp"

namespace comt::core {
namespace {

constexpr std::string_view kRebuildMetaPath = "/.coMtainer/rebuild-meta.json";

json::Value replacements_to_json(const std::map<std::string, std::string>& replacements) {
  json::Object object;
  for (const auto& [from, to] : replacements) object.emplace_back(from, json::Value(to));
  return json::Value(std::move(object));
}

std::map<std::string, std::string> replacements_from_json(const json::Value& value) {
  std::map<std::string, std::string> out;
  if (!value.is_object()) return out;
  for (const auto& [from, to] : value.as_object()) {
    if (to.is_string()) out[from] = to.as_string();
  }
  return out;
}

}  // namespace

std::string base_tag_of(std::string_view tag) {
  for (std::string_view suffix : {kRedirectedSuffix, kRebuiltSuffix, kExtendedSuffix}) {
    if (ends_with(tag, suffix)) return std::string(tag.substr(0, tag.size() - suffix.size()));
  }
  return std::string(tag);
}

Result<oci::Image> comtainer_build(oci::Layout& layout, std::string_view dist_tag,
                                   std::string_view base_tag,
                                   const buildexec::BuildRecord& record,
                                   const vfs::Filesystem& build_rootfs,
                                   const CacheOptions& cache_options) {
  COMT_TRY(oci::Image dist, layout.find_image(dist_tag));
  COMT_TRY(oci::Image base, layout.find_image(base_tag));

  AnalysisInput input;
  input.record = &record;
  input.layout = &layout;
  input.dist_image = &dist;
  input.dist_base = &base;
  COMT_TRY(ProcessModels models, analyze(input));
  models.image.image_tag = std::string(dist_tag);

  COMT_TRY(vfs::Filesystem cache_layer,
           make_cache_layer(models, record, build_rootfs, cache_options));
  std::string extended_tag = std::string(dist_tag) + std::string(kExtendedSuffix);
  return layout.append_layer(dist, cache_layer, "coMtainer-build", extended_tag);
}

Result<RebuildReport> comtainer_rebuild(oci::Layout& layout, std::string_view extended_tag,
                                        const RebuildOptions& options) {
  if (options.system == nullptr || options.system_repo == nullptr) {
    return make_error(Errc::invalid_argument, "rebuild: missing system or repository");
  }
  COMT_TRY(oci::Image extended, layout.find_image(extended_tag));
  COMT_TRY(vfs::Filesystem extended_rootfs, layout.flatten(extended));
  COMT_TRY(CacheBundle bundle, load_cache(extended_rootfs));

  // Adapters operate on an independent copy of the models (§4.2).
  BuildGraph graph = bundle.models.graph;
  AdapterContext context{options.system, options.system_repo};
  RebuildReport report;
  bool want_profile = false;
  for (const SystemAdapter* adapter : options.adapters) {
    COMT_TRY_STATUS(adapter->adapt_graph(graph, context));
    adapter->adapt_packages(report.package_replacements, bundle.models.image, context);
    want_profile = want_profile || adapter->wants_profile_feedback();
  }

  // The rebuild container: the system's build environment.
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(options.system_repo);
  COMT_TRY(buildexec::Container container, builder.container_from(options.sysenv_tag));

  // Materialize every build input from the cache at its recorded path.
  // Inputs absent from the cache must be environment-provided files
  // (package-owned libraries): the Sysenv container supplies its own —
  // optimized — builds of those at the same paths.
  for (const GraphNode& node : graph.nodes()) {
    if (!node.is_leaf() || node.content_digest.empty()) continue;
    auto source = bundle.sources.find(node.content_digest);
    if (source == bundle.sources.end()) {
      if (container.rootfs().exists(node.path)) continue;
      return make_error(Errc::corrupt, "rebuild: cache is missing input " + node.path +
                                           " and the system provides no substitute");
    }
    COMT_TRY_STATUS(container.rootfs().write_file(node.path, source->second));
  }

  COMT_TRY(std::vector<int> order, graph.topological_order());
  auto execute_graph = [&](bool profile_generate, bool profile_use) -> Status {
    for (int id : order) {
      const GraphNode& node = graph.node(id);
      if (node.is_leaf()) continue;
      container.set_cwd(node.cwd.empty() ? "/" : node.cwd);
      Status status = Status::success();
      if (node.compile.has_value()) {
        toolchain::CompileCommand command = *node.compile;
        if (profile_generate) {
          command.profile_generate = true;
          command.profile_use.clear();
        }
        if (profile_use) {
          command.profile_generate = false;
          command.profile_use = ".";
        }
        status = container.run_argv(command.render());
      } else if (!node.archive_argv.empty()) {
        status = container.run_argv(node.archive_argv);
      }
      if (!status.ok()) {
        return make_error(status.error().code,
                          "rebuild of node " + std::to_string(id) + " (" + node.path +
                              "): " + status.error().message);
      }
      ++report.nodes_executed;
    }
    return Status::success();
  };

  if (want_profile) {
    // Pass 1: instrumented build.
    COMT_TRY_STATUS(execute_graph(/*profile_generate=*/true, /*profile_use=*/false));
    // Trial runs on the target system produce the profiles.
    sysmodel::ExecutionEngine engine(*options.system);
    for (int id : graph.roots()) {
      const GraphNode& node = graph.node(id);
      if (node.kind != NodeKind::executable) continue;
      auto run = engine.run(container.rootfs(), node.path, options.profile_run);
      if (!run.ok()) {
        return make_error(run.error().code,
                          "PGO trial run of " + node.path + ": " + run.error().message);
      }
      if (!run.value().profile_blob.empty()) {
        std::string cwd = node.cwd.empty() ? "/" : node.cwd;
        COMT_TRY_STATUS(container.rootfs().write_file(
            path_join(cwd, toolchain::kDefaultProfileName), run.value().profile_blob));
      }
    }
    // Pass 2: profile-guided build.
    COMT_TRY_STATUS(execute_graph(/*profile_generate=*/false, /*profile_use=*/true));
    report.profile_feedback = true;
  } else {
    COMT_TRY_STATUS(execute_graph(false, false));
  }

  // Post-link artifact transformations (binary-level optimizations such as
  // the BOLT-style layout adapter) run on the rebuilt linked images.
  for (int id : graph.roots()) {
    const GraphNode& node = graph.node(id);
    if (node.kind != NodeKind::executable && node.kind != NodeKind::shared_lib) continue;
    auto blob = container.rootfs().read_file(node.path);
    if (!blob.ok() || !toolchain::is_image_blob(blob.value())) continue;
    COMT_TRY(toolchain::LinkedImage artifact, toolchain::parse_image(blob.value()));
    bool changed = false;
    for (const SystemAdapter* adapter : options.adapters) {
      toolchain::LinkedImage before = artifact;
      COMT_TRY_STATUS(adapter->adapt_artifact(artifact, context));
      changed = changed || !(artifact == before);
    }
    if (changed) {
      COMT_TRY_STATUS(container.rootfs().write_file(
          node.path, toolchain::serialize_image(artifact), 0755));
    }
  }

  // Collect the rebuild layer: the rebuilt content of every build-produced
  // file of the application image, stored under /.coMtainer/rebuild at the
  // file's original image path.
  vfs::Filesystem rebuild_layer;
  for (const ImageFileEntry& entry : bundle.models.image.files) {
    if (entry.origin != FileOrigin::build_process || entry.build_node < 0) continue;
    const GraphNode& node = graph.node(entry.build_node);
    auto content = container.rootfs().read_file(node.path);
    if (!content.ok()) {
      return make_error(Errc::failed,
                        "rebuild: expected output missing from rebuild container: " +
                            node.path);
    }
    COMT_TRY_STATUS(rebuild_layer.write_file(std::string(kRebuildDir) + entry.path,
                                             std::move(content).value(), 0755));
    ++report.files_rebuilt;
  }
  COMT_TRY_STATUS(rebuild_layer.write_file(
      std::string(kRebuildMetaPath),
      json::serialize(replacements_to_json(report.package_replacements))));

  std::string rebuilt_tag = base_tag_of(extended_tag) + std::string(kRebuiltSuffix);
  COMT_TRY(report.image,
           layout.append_layer(extended, rebuild_layer, "coMtainer-rebuild", rebuilt_tag));
  return report;
}

Result<RedirectReport> comtainer_redirect(oci::Layout& layout, std::string_view source_tag,
                                          const RedirectOptions& options) {
  if (options.system_repo == nullptr) {
    return make_error(Errc::invalid_argument, "redirect: missing system repository");
  }
  COMT_TRY(oci::Image source, layout.find_image(source_tag));
  COMT_TRY(vfs::Filesystem source_rootfs, layout.flatten(source));
  COMT_TRY(CacheBundle bundle, load_cache(source_rootfs));
  const ImageModel& model = bundle.models.image;

  // Package replacements: from the rebuild layer when present, plus any the
  // caller supplies (redirect-only flows).
  std::map<std::string, std::string> replacements = options.package_replacements;
  if (source_rootfs.is_regular(kRebuildMetaPath)) {
    COMT_TRY(std::string meta_text, source_rootfs.read_file(kRebuildMetaPath));
    COMT_TRY(json::Value meta, json::parse(meta_text));
    for (const auto& [from, to] : replacements_from_json(meta)) {
      replacements.emplace(from, to);
    }
  }

  COMT_TRY(oci::Image rebase, layout.find_image(options.rebase_tag));
  COMT_TRY(vfs::Filesystem rebase_rootfs, layout.flatten(rebase));
  buildexec::Container container(std::move(rebase_rootfs), rebase.config,
                                 options.system_repo);

  RedirectReport report;

  // Install the application's runtime dependencies. A package is taken from
  // the system repository only when an adapter proposed the substitution
  // (the libo decision); otherwise — and when the system repo lacks it —
  // the original image's files are carried over unchanged, so un-adapted
  // redirects preserve the generic stack exactly.
  for (const RuntimePackage& package : model.runtime_packages) {
    auto replacement = replacements.find(package.name);
    if (replacement != replacements.end() &&
        options.system_repo->find(replacement->second) != nullptr) {
      COMT_TRY_STATUS(
          container.run_argv({"apt-get", "install", "-y", replacement->second}));
      ++report.packages_installed;
    } else {
      for (const ImageFileEntry& entry : model.files) {
        if (entry.origin == FileOrigin::package_manager &&
            entry.owner_package == package.name &&
            !container.rootfs().exists(entry.path)) {
          COMT_TRY_STATUS(
              container.rootfs().copy_from(source_rootfs, entry.path, entry.path));
        }
      }
    }
  }

  // Place application files at their original paths: rebuilt content where a
  // rebuild layer provides it, otherwise the original image's bytes.
  for (const ImageFileEntry& entry : model.files) {
    switch (entry.origin) {
      case FileOrigin::base_image:
      case FileOrigin::package_manager:
        break;  // supplied by the Rebase image / installed packages
      case FileOrigin::build_process: {
        std::string rebuilt_path = std::string(kRebuildDir) + entry.path;
        if (source_rootfs.is_regular(rebuilt_path)) {
          COMT_TRY(std::string content, source_rootfs.read_file(rebuilt_path));
          COMT_TRY_STATUS(
              container.rootfs().write_file(entry.path, std::move(content), 0755));
          ++report.files_from_rebuild;
        } else {
          COMT_TRY_STATUS(
              container.rootfs().copy_from(source_rootfs, entry.path, entry.path));
          ++report.files_from_original;
        }
        break;
      }
      case FileOrigin::data:
      case FileOrigin::unknown:
        COMT_TRY_STATUS(
            container.rootfs().copy_from(source_rootfs, entry.path, entry.path));
        ++report.files_from_original;
        break;
    }
  }

  // The optimized image keeps the application's runtime configuration.
  container.config().config = source.config.config;

  buildexec::ImageBuilder builder(layout);
  std::string optimized_tag = base_tag_of(source_tag) + std::string(kRedirectedSuffix);
  COMT_TRY(report.image,
           builder.commit(container, rebase, "coMtainer-redirect", optimized_tag));
  return report;
}

}  // namespace comt::core
