#include "core/adapters.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace comt::core {

Status ToolchainAdapter::adapt_graph(BuildGraph& graph,
                                     const AdapterContext& context) const {
  if (context.system == nullptr) {
    return make_error(Errc::invalid_argument, "cxxo: no target system in context");
  }
  for (GraphNode& node : graph.nodes()) {
    if (!node.compile.has_value()) continue;
    toolchain::CompileCommand& command = *node.compile;
    // Redirect the invocation to the system's native compiler. MPI wrapper
    // identity is preserved so the implicit -lmpi behavior survives.
    std::string base = path_basename(command.program);
    command.program = std::string(kSystemToolchainDir) + "/" + base;
    // Compile for the hardware the system vendor tunes for.
    command.march = context.system->native_march;
    command.mtune.clear();
    command.opt_level = std::max(command.opt_level, 3);
    node.toolchain_id = context.system->native_toolchain;
  }
  return Status::success();
}

void LibraryAdapter::adapt_packages(std::map<std::string, std::string>& replacements,
                                    const ImageModel& image,
                                    const AdapterContext& context) const {
  if (context.system_repo == nullptr) return;
  for (const RuntimePackage& package : image.runtime_packages) {
    const pkg::Package* candidate = context.system_repo->find(package.name);
    if (candidate == nullptr) continue;
    if (candidate->variant == pkg::Variant::optimized &&
        package.variant != "optimized") {
      replacements[package.name] = candidate->name;
    }
  }
}

bool LtoAdapter::in_scope(const GraphNode& node) const {
  if (scope_.empty()) return true;
  for (const std::string& fragment : scope_) {
    if (contains(node.path, fragment)) return true;
    for (const std::string& input : node.compile->inputs) {
      if (contains(input, fragment)) return true;
    }
  }
  return false;
}

Status LtoAdapter::adapt_graph(BuildGraph& graph, const AdapterContext&) const {
  // The whole build process is explicit graph data, so LTO can be switched
  // on per node: the full graph by default (the evaluation's setting), or
  // any scoped subset. Link commands always get -flto so whatever IR arrives
  // participates — mirroring GCC, objects compiled without -flto simply
  // don't.
  for (GraphNode& node : graph.nodes()) {
    if (!node.compile.has_value()) continue;
    bool is_link = node.kind == NodeKind::executable || node.kind == NodeKind::shared_lib;
    if (!is_link && !in_scope(node)) continue;
    node.compile->lto = true;
    node.compile->opt_level = std::max(node.compile->opt_level, 2);
  }
  return Status::success();
}

Status CrossIsaAdapter::adapt_graph(BuildGraph& graph,
                                    const AdapterContext& context) const {
  if (context.system == nullptr) {
    return make_error(Errc::invalid_argument, "cross-isa: no target system in context");
  }
  for (GraphNode& node : graph.nodes()) {
    if (!node.compile.has_value()) continue;
    toolchain::CompileCommand& command = *node.compile;
    // Drop source-ISA machine options wholesale; the target system's
    // toolchain defaults (or a later ToolchainAdapter) pick the new ISA.
    command.march.clear();
    command.mtune.clear();
    std::erase_if(command.generic, [](const toolchain::GenericOption& option) {
      return option.category == toolchain::OptionCategory::machine;
    });
  }
  return Status::success();
}

Status LayoutAdapter::adapt_artifact(toolchain::LinkedImage& artifact,
                                     const AdapterContext&) const {
  // Layout optimization needs a profile to know what is hot; without one
  // (the feedback run produced nothing) it is a no-op, like running BOLT
  // without perf data.
  if (artifact.codegen.pgo_quality <= 0) return Status::success();
  artifact.codegen.layout_optimized = true;
  for (toolchain::ObjectCode& object : artifact.objects) {
    if (object.codegen.pgo_quality > 0) object.codegen.layout_optimized = true;
  }
  return Status::success();
}

std::vector<std::unique_ptr<SystemAdapter>> adapted_scheme() {
  std::vector<std::unique_ptr<SystemAdapter>> adapters;
  adapters.push_back(std::make_unique<LibraryAdapter>());
  adapters.push_back(std::make_unique<ToolchainAdapter>());
  return adapters;
}

std::vector<std::unique_ptr<SystemAdapter>> optimized_scheme() {
  std::vector<std::unique_ptr<SystemAdapter>> adapters = adapted_scheme();
  adapters.push_back(std::make_unique<LtoAdapter>());
  adapters.push_back(std::make_unique<PgoAdapter>());
  return adapters;
}

}  // namespace comt::core
