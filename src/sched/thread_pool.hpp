// Work-stealing thread pool backing the parallel rebuild engine.
//
// Each worker owns a deque: it pops its own work from the front and steals
// from the back of sibling deques when idle (Blumofe/Leiserson discipline).
// Submission round-robins across the deques, so independent compile jobs
// spread over workers without a single contended global queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"

namespace comt::sched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Equivalent to shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. No-op after shutdown().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Stops the workers. Tasks already running finish; tasks still queued are
  /// discarded — shutting down under pending work must never hang.
  void shutdown();

  /// Number of tasks that have run to completion.
  std::uint64_t executed() const { return executed_.load(); }

  /// Attaches pool instrumentation: every task records its submit-to-start
  /// queue wait in the "<prefix>.queue_wait_ms" histogram and bumps
  /// "<prefix>.tasks". Pass nullptr to detach. Not synchronized with
  /// concurrent submits — wire it up before sharing the pool.
  void set_metrics(obs::MetricsRegistry* metrics, std::string_view prefix = "sched.pool");

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  bool take(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;
  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::size_t> next_queue_{0};
  obs::Histogram* queue_wait_ms_ = nullptr;  // resolved once in set_metrics
  obs::Counter* task_counter_ = nullptr;
  std::size_t outstanding_ = 0;  // queued + running, guarded by state_mutex_
  bool stopping_ = false;
};

}  // namespace comt::sched
