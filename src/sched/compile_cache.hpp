// Content-addressed compile cache for the rebuild engine.
//
// Works like ccache's "direct mode": the key digest is computed from
// everything that selects the computation — toolchain id, target ISA, working
// directory, and the exact argument vector — and each entry carries a
// manifest of the input files (path → content sha256) observed when the
// entry was stored. A lookup only hits when every manifest input still has
// the same digest, so a changed header or source transparently misses and
// recompiles. Entries store the produced output blobs, so a hit replays the
// outputs without running the toolchain at all.
//
// Concurrency model (RCU-style): the entry map is an immutable snapshot,
// republished as a whole by every mutation. Each reader thread caches the
// snapshot it last saw together with the cache's version stamp; lookup() —
// the hot path, hit every compile job of a warm rebuild — validates the
// cached snapshot with one atomic version load and proceeds with no lock
// and no shared-memory write. Only when the version moved (someone stored)
// does the reader take the writer mutex for one brief snapshot refresh.
// Mutations (store, attach) copy-update-republish under the mutex; readers
// holding an old snapshot keep it alive. (An atomic shared_ptr would be the
// textbook publication primitive, but libstdc++'s implementation trips
// ThreadSanitizer, and the version check is cheaper anyway.)
// See docs/PERFORMANCE.md for why the hit path must be lock-free.
//
// attach() bolts the cache onto a store::KvStore: every store() writes the
// entry through under "cache/<key digest>" and attach itself hydrates the
// entries the backing already holds, so a cache over a DiskStore directory
// starts warm in the next process. A persisted entry whose checksum fails
// deserialization is dropped (degrades to a miss, never to a wrong hit).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace comt::sched {

/// Key prefix an attached CompileCache persists entries under.
inline constexpr std::string_view kCacheKeyPrefix = "cache/";

/// Everything that identifies a compile computation, before inputs are read.
struct CacheKey {
  std::string toolchain_id;       ///< which simulated toolchain runs
  std::string target_arch;        ///< target ISA the driver lowers to
  std::string cwd;                ///< directory relative paths resolve in
  std::vector<std::string> argv;  ///< full rendered command line

  /// Stable sha256 over all four fields (length-prefixed so field
  /// boundaries can't collide).
  std::string digest() const;
};

/// One output blob a cached job produced.
struct CachedOutput {
  std::string path;     ///< absolute path inside the rebuild rootfs
  std::string content;  ///< full file content
  std::uint32_t mode = 0644;
};

/// A stored computation: the inputs it read (with their digests at store
/// time) and the outputs it wrote.
struct CacheEntry {
  /// Input path → sha256 at the time the entry was stored. Verified on
  /// lookup; any mismatch (or unreadable input) is a miss.
  std::map<std::string, std::string> input_digests;
  std::vector<CachedOutput> outputs;
};

/// Hit/miss/store counters for one cache over its lifetime. A consistent
/// point-in-time snapshot taken by stats().
struct CacheStats {
  std::uint64_t hits = 0;            ///< lookups whose manifest fully verified
  std::uint64_t misses = 0;          ///< absent key or stale manifest input
  std::uint64_t stores = 0;          ///< store() calls (inserts and replacements)
  std::uint64_t hydrated = 0;        ///< entries recovered from the backing store
  std::uint64_t corrupt_dropped = 0; ///< persisted entries rejected at hydration
  std::uint64_t remote_hits = 0;     ///< hits served via the backing-store fallback
};

/// Thread-safe in-memory compile cache shared by all jobs of a rebuild (and
/// across rebuilds, when the caller keeps it alive). Lookups are lock-free;
/// store/attach serialize on an internal writer mutex.
class CompileCache {
 public:
  /// Returns the current digest of `path` in the caller's filesystem, or an
  /// empty string when the file can't be read.
  using DigestFn = std::function<std::string(const std::string& path)>;

  /// Looks up `key_digest`. On a candidate entry, re-digests every manifest
  /// input through `digest_of`; the entry only hits when all match. Returns
  /// the entry on a hit, nullptr on a miss. Counts one hit or one miss.
  /// Steady-state lock-free: one atomic version load validates this thread's
  /// cached snapshot; the mutex is touched only right after a store changed
  /// the map. Concurrent store() calls are invisible to an in-flight lookup
  /// (it reads the snapshot it started with).
  ///
  /// When attached, a local miss falls back to the backing store before
  /// giving up: an intact persisted entry (stored by another replica sharing
  /// the backing, or by a store() this process has not re-read) is adopted
  /// into the local map and, manifest permitting, served as a hit —
  /// counted separately as CacheStats::remote_hits. This is what makes one
  /// replica's compile warm every other replica in a fleet without
  /// re-attaching.
  std::shared_ptr<const CacheEntry> lookup(const std::string& key_digest,
                                           const DigestFn& digest_of) const;

  /// Stores (or replaces) the entry for `key_digest`. Counts one store.
  /// When attached, the entry also writes through to the backing store.
  /// Takes the writer mutex; safe against concurrent lookups and stores.
  void store(const std::string& key_digest, CacheEntry entry);

  /// Backs the cache with `backing` under `prefix`: hydrates every intact
  /// persisted entry (counting CacheStats::hydrated), erases and counts
  /// corrupt ones (CacheStats::corrupt_dropped), and writes every future
  /// store() through. Call before sharing the cache. Returns the number of
  /// entries hydrated. Passing nullptr detaches.
  std::size_t attach(std::shared_ptr<store::KvStore> backing,
                     std::string prefix = std::string(kCacheKeyPrefix));

  /// Attaches counters ("compile_cache.hits", "compile_cache.misses",
  /// "compile_cache.inserts", "compile_cache.hydrated",
  /// "compile_cache.corrupt_dropped", "compile_cache.remote_hits"). Pass
  /// nullptr to detach. Safe to call
  /// while lookups run (the instrument pointers are atomic), though counts
  /// bumped before the attach are not replayed into the registry.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Point-in-time counter snapshot (atomic reads, no lock).
  CacheStats stats() const;

  /// Entries currently published.
  std::size_t size() const;

 private:
  using EntryMap = std::map<std::string, std::shared_ptr<const CacheEntry>>;

  static std::uint64_t next_instance_id();

  /// This thread's view of the entry map: the cached snapshot when the
  /// version stamp still matches (no lock), a mutex-protected refresh when
  /// it moved. The returned map is immutable and refcounted.
  std::shared_ptr<const EntryMap> snapshot() const;

  /// Backing-store fallback for a local miss: fetches, verifies, and adopts
  /// the persisted entry under `key_digest`, or nullptr when the backing has
  /// no intact copy. Called from (const) lookup, hence the mutable state.
  std::shared_ptr<const CacheEntry> fetch_remote(const std::string& key_digest) const;

  // The current map, republished as a whole by every mutation under
  // `mutex_`; `version_` bumps on each publish so readers can validate
  // their thread-local snapshot with one atomic load. The map behind a
  // published pointer is never mutated. Mutable: lookup() adopts
  // backing-store entries on a local miss.
  mutable std::shared_ptr<const EntryMap> published_ =
      std::make_shared<const EntryMap>();     // guarded by mutex_
  mutable std::atomic<std::uint64_t> version_{1};
  const std::uint64_t instance_id_ = next_instance_id();  // never reused
  mutable std::mutex mutex_;  // serializes store/attach/backing writes

  mutable std::atomic<std::uint64_t> hit_count_{0};
  mutable std::atomic<std::uint64_t> miss_count_{0};
  mutable std::atomic<std::uint64_t> remote_hit_count_{0};
  std::atomic<std::uint64_t> store_count_{0};
  std::atomic<std::uint64_t> hydrated_count_{0};
  std::atomic<std::uint64_t> corrupt_count_{0};

  std::shared_ptr<store::KvStore> backing_;  // guarded by mutex_
  std::string prefix_;                       // guarded by mutex_
  // Resolved in set_metrics; atomic because lookups read them with no lock.
  mutable std::atomic<obs::Counter*> hits_{nullptr};
  mutable std::atomic<obs::Counter*> misses_{nullptr};
  mutable std::atomic<obs::Counter*> remote_hits_{nullptr};
  std::atomic<obs::Counter*> inserts_{nullptr};
  std::atomic<obs::Counter*> hydrated_{nullptr};
  std::atomic<obs::Counter*> corrupt_dropped_{nullptr};
};

}  // namespace comt::sched
