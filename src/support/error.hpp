// Error handling primitives used across the comtainer libraries.
//
// The codebase follows a two-tier policy (CppCoreGuidelines E.*):
//  - Programming errors (violated preconditions) abort via COMT_ASSERT.
//  - Expected runtime failures (malformed input, missing files, unresolvable
//    dependencies) are reported through Result<T>, a lightweight
//    std::expected-style type with a string-category error.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace comt {

/// Category of a runtime failure; used by callers to branch on error class
/// without parsing the message text.
enum class Errc {
  invalid_argument,  ///< malformed input handed to a parser or API
  not_found,         ///< a named entity (file, package, image, node) is absent
  already_exists,    ///< uniqueness violated (duplicate tag, path, node id)
  corrupt,           ///< stored data fails validation (digest mismatch, bad tar)
  unsupported,       ///< feature intentionally outside the prototype's scope
  failed,            ///< an operation ran and reported failure (tool exit != 0)
};

/// Human-readable name for an error category.
const char* errc_name(Errc code);

/// A runtime failure: category plus context message.
struct Error {
  Errc code = Errc::failed;
  std::string message;

  /// Formats as "<category>: <message>".
  std::string to_string() const { return std::string(errc_name(code)) + ": " + message; }
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

/// Minimal expected<T, Error>. Intentionally tiny: no monadic chaining beyond
/// what the codebase needs, so error paths stay greppable.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok(). Aborting accessor for the success value.
  T& value() & {
    require_ok();
    return std::get<T>(storage_);
  }
  const T& value() const& {
    require_ok();
    return std::get<T>(storage_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(storage_));
  }

  /// Precondition: !ok().
  const Error& error() const {
    if (ok()) die("Result::error() called on success value");
    return std::get<Error>(storage_);
  }

  T value_or(T fallback) const& { return ok() ? std::get<T>(storage_) : std::move(fallback); }

 private:
  [[noreturn]] static void die(const char* what) {
    std::fprintf(stderr, "comt fatal: %s\n", what);
    std::abort();
  }
  void require_ok() const {
    if (!ok()) {
      std::fprintf(stderr, "comt fatal: Result::value() on error: %s\n",
                   std::get<Error>(storage_).to_string().c_str());
      std::abort();
    }
  }

  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design

  static Status success() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) {
      std::fprintf(stderr, "comt fatal: Status::error() on success\n");
      std::abort();
    }
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Propagate the error of `expr` (a Result<T> or Status) out of the enclosing
/// function. Usage: COMT_TRY(auto x, parse(input));
#define COMT_TRY_CONCAT_INNER(a, b) a##b
#define COMT_TRY_CONCAT(a, b) COMT_TRY_CONCAT_INNER(a, b)
#define COMT_TRY_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                   \
  if (!tmp.ok()) return tmp.error();   \
  decl = std::move(tmp).value()
#define COMT_TRY(decl, expr) \
  COMT_TRY_IMPL(COMT_TRY_CONCAT(comt_try_tmp_, __LINE__), decl, expr)

#define COMT_TRY_STATUS(expr)                  \
  do {                                         \
    auto comt_status_tmp = (expr);             \
    if (!comt_status_tmp.ok()) return comt_status_tmp.error(); \
  } while (0)

/// Precondition check: aborts with location info when violated. Enabled in all
/// build types — these guard invariants whose violation would corrupt state.
#define COMT_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "comt assertion failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, msg);                                           \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

}  // namespace comt
