#include <gtest/gtest.h>

#include "tar/tar.hpp"

namespace comt::tar {
namespace {

vfs::Filesystem sample_tree() {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file("/etc/conf", "key=value\n").ok());
  EXPECT_TRUE(fs.write_file("/bin/prog", std::string(1500, 'b'), 0755).ok());
  EXPECT_TRUE(fs.make_symlink("/bin/sh", "prog").ok());
  EXPECT_TRUE(fs.make_directories("/empty-dir").ok());
  EXPECT_TRUE(fs.write_file("/zero", "").ok());
  return fs;
}

TEST(TarTest, RoundTripPreservesTree) {
  vfs::Filesystem tree = sample_tree();
  auto back = unpack(pack(tree));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value() == tree);
}

TEST(TarTest, EmptyTree) {
  vfs::Filesystem tree;
  std::string blob = pack(tree);
  EXPECT_EQ(blob.size(), 1024u);  // just the two terminator blocks
  auto back = unpack(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().node_count(), 0u);
}

TEST(TarTest, Deterministic) {
  EXPECT_EQ(pack(sample_tree()), pack(sample_tree()));
}

TEST(TarTest, BlockAlignment) {
  vfs::Filesystem tree;
  // Sizes straddling the 512-byte block boundary.
  for (std::size_t n : {0u, 1u, 511u, 512u, 513u, 1024u}) {
    ASSERT_TRUE(tree.write_file("/f" + std::to_string(n), std::string(n, 'x')).ok());
  }
  std::string blob = pack(tree);
  EXPECT_EQ(blob.size() % 512, 0u);
  auto back = unpack(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value() == tree);
}

TEST(TarTest, LongPathsUseLongLink) {
  vfs::Filesystem tree;
  std::string long_dir = "/";
  for (int i = 0; i < 12; ++i) long_dir += "very-long-directory-name-" + std::to_string(i) + "/";
  std::string path = long_dir + "leaf-file.txt";
  ASSERT_GT(path.size(), 100u);
  ASSERT_TRUE(tree.write_file(path, "deep content").ok());
  auto back = unpack(pack(tree));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().read_file(path).value(), "deep content");
}

TEST(TarTest, PreservesModes) {
  vfs::Filesystem tree;
  ASSERT_TRUE(tree.write_file("/x", "1", 0400).ok());
  ASSERT_TRUE(tree.write_file("/y", "2", 0755).ok());
  auto back = unpack(pack(tree));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().lookup("/x")->mode, 0400u);
  EXPECT_TRUE(back.value().lookup("/y")->executable());
}

TEST(TarTest, TruncatedArchiveFails) {
  std::string blob = pack(sample_tree());
  // Cut inside /bin/prog's 1500-byte payload, after its header is complete.
  auto result = unpack(std::string_view(blob).substr(0, 1100));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);
}

TEST(TarTest, GarbageTypeflagFails) {
  vfs::Filesystem tree;
  ASSERT_TRUE(tree.write_file("/f", "x").ok());
  std::string blob = pack(tree);
  blob[156] = 'Z';  // typeflag byte of the first header
  auto result = unpack(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::unsupported);
}

TEST(TarTest, WhiteoutFilesSurviveRoundTrip) {
  // Layer trees carry OCI whiteouts as plain files; tar must not mangle them.
  vfs::Filesystem tree;
  ASSERT_TRUE(tree.write_file("/dir/.wh.removed", "").ok());
  ASSERT_TRUE(tree.write_file("/dir/.wh..wh..opq", "").ok());
  auto back = unpack(pack(tree));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().is_regular("/dir/.wh.removed"));
  EXPECT_TRUE(back.value().is_regular("/dir/.wh..wh..opq"));
}

TEST(TarTest, BinaryContentSurvives) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  vfs::Filesystem tree;
  ASSERT_TRUE(tree.write_file("/bin.dat", binary).ok());
  auto back = unpack(pack(tree));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().read_file("/bin.dat").value(), binary);
}

}  // namespace
}  // namespace comt::tar
