// On-disk OCI image layout persistence.
//
// Writes a Layout to a real directory in the OCI image-layout format the
// paper's workflow passes around (`buildah push xxx.dist oci:./xxx.dist.oci`
// and the `-v ./xxx.dist.oci:/.coMtainer/io` mounts):
//
//   <dir>/oci-layout                  {"imageLayoutVersion":"1.0.0"}
//   <dir>/index.json                  manifest list with ref.name tags
//   <dir>/blobs/sha256/<hex>          content-addressed blobs
//
// load_layout() reads such a directory back (including ones written by other
// tools, as long as the blobs this library understands are present).
#pragma once

#include <string>
#include <string_view>

#include "oci/oci.hpp"
#include "support/error.hpp"

namespace comt::oci {

/// Serializes `layout` into `directory` (created if missing; existing blobs
/// are overwritten). Only blobs reachable from the index are written.
Status save_layout(const Layout& layout, const std::string& directory);

/// Loads an OCI layout directory produced by save_layout (or compatible).
Result<Layout> load_layout(const std::string& directory);

}  // namespace comt::oci
