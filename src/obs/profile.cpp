#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace comt::obs {
namespace {

std::size_t phase_rank(std::string_view phase) {
  for (std::size_t i = 0; i < std::size(kPipelinePhases); ++i) {
    if (kPipelinePhases[i] == phase) return i;
  }
  return std::size(kPipelinePhases);
}

}  // namespace

json::Value ProfileReport::to_json() const {
  json::Array phase_array;
  for (const PhaseTime& phase : phases) {
    json::Object entry;
    entry.emplace_back("phase", json::Value(phase.phase));
    entry.emplace_back("total_ms", json::Value(phase.total_ms));
    entry.emplace_back("spans", json::Value(static_cast<std::uint64_t>(phase.spans)));
    phase_array.push_back(json::Value(std::move(entry)));
  }
  json::Object document;
  document.emplace_back("root", json::Value(root));
  document.emplace_back("total_ms", json::Value(total_ms));
  document.emplace_back("phases", json::Value(std::move(phase_array)));
  return json::Value(std::move(document));
}

std::string ProfileReport::to_string() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "%-14s %10.3f ms\n",
                root.empty() ? "(trace)" : root.c_str(), total_ms);
  out += line;
  for (const PhaseTime& phase : phases) {
    std::snprintf(line, sizeof(line), "  %-12s %10.3f ms  %6zu span%s\n",
                  phase.phase.c_str(), phase.total_ms, phase.spans,
                  phase.spans == 1 ? "" : "s");
    out += line;
  }
  return out;
}

ProfileReport profile_phases(const Tracer& tracer, SpanId root) {
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ProfileReport report;

  // Restrict to the root's descendants when a root is given. Parent links
  // form a forest, so one upward walk per span (with memoization via the
  // accepted set) decides membership.
  std::unordered_set<SpanId> included;
  if (root != kNoSpan) {
    std::unordered_map<SpanId, SpanId> parent_of;
    parent_of.reserve(spans.size());
    for (const SpanRecord& span : spans) parent_of.emplace(span.id, span.parent);
    included.insert(root);
    for (const SpanRecord& span : spans) {
      std::vector<SpanId> chain;
      SpanId cursor = span.id;
      bool under_root = false;
      while (cursor != kNoSpan) {
        if (included.count(cursor) != 0) {
          under_root = true;
          break;
        }
        chain.push_back(cursor);
        auto up = parent_of.find(cursor);
        cursor = up == parent_of.end() ? kNoSpan : up->second;
      }
      if (under_root) included.insert(chain.begin(), chain.end());
    }
  }

  std::map<std::string, PhaseTime> by_phase;
  for (const SpanRecord& span : spans) {
    if (root != kNoSpan) {
      if (span.id == root) {
        report.root = span.name;
        report.total_ms = span.dur_us / 1000.0;
        continue;  // the root's own category would double-count its children
      }
      if (included.count(span.id) == 0) continue;
    }
    const std::string phase = span.category.empty() ? "default" : span.category;
    PhaseTime& entry = by_phase[phase];
    entry.phase = phase;
    entry.total_ms += span.dur_us / 1000.0;
    ++entry.spans;
  }
  if (root == kNoSpan && !spans.empty()) {
    double begin = spans.front().start_us;
    double end = begin;
    for (const SpanRecord& span : spans) {
      end = std::max(end, span.start_us + span.dur_us);
    }
    report.total_ms = (end - begin) / 1000.0;
  }

  for (auto& [phase, entry] : by_phase) report.phases.push_back(std::move(entry));
  std::stable_sort(report.phases.begin(), report.phases.end(),
                   [](const PhaseTime& a, const PhaseTime& b) {
                     const std::size_t ra = phase_rank(a.phase);
                     const std::size_t rb = phase_rank(b.phase);
                     if (ra != rb) return ra < rb;
                     return a.phase < b.phase;
                   });
  return report;
}

}  // namespace comt::obs
