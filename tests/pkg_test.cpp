#include <gtest/gtest.h>

#include "pkg/pkg.hpp"

namespace comt::pkg {
namespace {

Package make_package(std::string name, std::vector<std::string> depends = {},
                     Variant variant = Variant::generic) {
  Package package;
  package.name = name;
  package.version = "1.0";
  package.architecture = "amd64";
  package.variant = variant;
  package.depends = std::move(depends);
  package.files.push_back({"/usr/lib/" + name + ".so", name + " payload", 0755});
  package.files.push_back({"/usr/share/doc/" + name, "docs", 0644});
  return package;
}

Repository sample_repo() {
  Repository repo;
  EXPECT_TRUE(repo.add(make_package("libc")).ok());
  EXPECT_TRUE(repo.add(make_package("libm", {"libc"})).ok());
  EXPECT_TRUE(repo.add(make_package("libblas", {"libm"})).ok());
  Package mpi = make_package("mpich", {"libc"});
  mpi.provides = {"libmpi"};
  EXPECT_TRUE(repo.add(std::move(mpi)).ok());
  return repo;
}

TEST(RepositoryTest, AddAndFind) {
  Repository repo = sample_repo();
  EXPECT_NE(repo.find("libm"), nullptr);
  EXPECT_EQ(repo.find("ghost"), nullptr);
  EXPECT_EQ(repo.size(), 4u);
}

TEST(RepositoryTest, DuplicateRejected) {
  Repository repo = sample_repo();
  auto status = repo.add(make_package("libm"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::already_exists);
}

TEST(RepositoryTest, VirtualProvides) {
  Repository repo = sample_repo();
  const Package* provider = repo.find("libmpi");
  ASSERT_NE(provider, nullptr);
  EXPECT_EQ(provider->name, "mpich");
}

TEST(PackageTest, Attributes) {
  Package package = make_package("libblas");
  package.attributes["libspeed"] = "3.2";
  package.attributes["fabric"] = "hsn";
  EXPECT_DOUBLE_EQ(package.attribute_double("libspeed", 1.0), 3.2);
  EXPECT_DOUBLE_EQ(package.attribute_double("missing", 1.5), 1.5);
  EXPECT_DOUBLE_EQ(package.attribute_double("fabric", 9.0), 9.0);  // non-numeric
  EXPECT_EQ(package.attribute("fabric"), "hsn");
  EXPECT_EQ(package.attribute("missing", "dflt"), "dflt");
  EXPECT_EQ(package.installed_size(), std::string("libblas payload").size() + 4);
}

TEST(ResolveTest, DependenciesBeforeDependents) {
  Repository repo = sample_repo();
  auto plan = resolve(repo, {"libblas"});
  ASSERT_TRUE(plan.ok());
  std::vector<std::string> names;
  for (const Package* package : plan.value()) names.push_back(package->name);
  EXPECT_EQ(names, (std::vector<std::string>{"libc", "libm", "libblas"}));
}

TEST(ResolveTest, SharedDependencyOnce) {
  Repository repo = sample_repo();
  auto plan = resolve(repo, {"libblas", "mpich"});
  ASSERT_TRUE(plan.ok());
  int libc_count = 0;
  for (const Package* package : plan.value()) {
    if (package->name == "libc") ++libc_count;
  }
  EXPECT_EQ(libc_count, 1);
  EXPECT_EQ(plan.value().size(), 4u);
}

TEST(ResolveTest, AlreadyInstalledSkipped) {
  Repository repo = sample_repo();
  auto plan = resolve(repo, {"libblas"}, {"libc", "libm"});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().size(), 1u);
  EXPECT_EQ(plan.value()[0]->name, "libblas");
}

TEST(ResolveTest, MissingPackageFails) {
  Repository repo = sample_repo();
  auto plan = resolve(repo, {"no-such-package"});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, Errc::not_found);
}

TEST(ResolveTest, MissingDependencyFails) {
  Repository repo;
  ASSERT_TRUE(repo.add(make_package("top", {"absent"})).ok());
  auto plan = resolve(repo, {"top"});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, Errc::not_found);
}

TEST(ResolveTest, CycleDetected) {
  Repository repo;
  ASSERT_TRUE(repo.add(make_package("a", {"b"})).ok());
  ASSERT_TRUE(repo.add(make_package("b", {"a"})).ok());
  auto plan = resolve(repo, {"a"});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, Errc::invalid_argument);
}

TEST(ResolveTest, VirtualDependency) {
  Repository repo = sample_repo();
  ASSERT_TRUE(repo.add(make_package("app", {"libmpi"})).ok());
  auto plan = resolve(repo, {"app"});
  ASSERT_TRUE(plan.ok());
  bool saw_mpich = false;
  for (const Package* package : plan.value()) saw_mpich |= package->name == "mpich";
  EXPECT_TRUE(saw_mpich);
}

TEST(DatabaseTest, InstallWritesFilesAndRecords) {
  vfs::Filesystem fs;
  Database db;
  ASSERT_TRUE(db.install(fs, make_package("libm")).ok());
  EXPECT_TRUE(fs.is_regular("/usr/lib/libm.so"));
  EXPECT_TRUE(fs.is_regular(kStatusPath));
  EXPECT_TRUE(fs.is_regular("/var/lib/dpkg/info/libm.list"));
  EXPECT_TRUE(db.installed("libm"));
  EXPECT_EQ(db.owner_of("/usr/lib/libm.so"), "libm");
  EXPECT_EQ(db.owner_of("/unowned"), "");
}

TEST(DatabaseTest, DoubleInstallRejected) {
  vfs::Filesystem fs;
  Database db;
  ASSERT_TRUE(db.install(fs, make_package("libm")).ok());
  auto status = db.install(fs, make_package("libm"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::already_exists);
}

TEST(DatabaseTest, FileConflictRejected) {
  vfs::Filesystem fs;
  Database db;
  ASSERT_TRUE(db.install(fs, make_package("libm")).ok());
  Package rival = make_package("libm2");
  rival.files[0].path = "/usr/lib/libm.so";  // collide
  auto status = db.install(fs, rival);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::already_exists);
}

TEST(DatabaseTest, RemoveDeletesFilesAndRecords) {
  vfs::Filesystem fs;
  Database db;
  ASSERT_TRUE(db.install(fs, make_package("libm")).ok());
  ASSERT_TRUE(db.remove(fs, "libm").ok());
  EXPECT_FALSE(fs.exists("/usr/lib/libm.so"));
  EXPECT_FALSE(db.installed("libm"));
  EXPECT_EQ(db.owner_of("/usr/lib/libm.so"), "");
  EXPECT_FALSE(db.remove(fs, "libm").ok());
}

TEST(DatabaseTest, PersistAndReloadRoundTrip) {
  vfs::Filesystem fs;
  {
    Database db;
    Package package = make_package("libblas", {"libm", "libc"}, Variant::optimized);
    package.attributes["libspeed"] = "3.2";
    ASSERT_TRUE(db.install(fs, package).ok());
    ASSERT_TRUE(db.install(fs, make_package("libm")).ok());
  }
  // A fresh Database reconstructed purely from the image contents — the
  // property the coMtainer front-end relies on (§4.5).
  auto reloaded = Database::load(fs);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().size(), 2u);
  const InstalledPackage* blas = reloaded.value().find("libblas");
  ASSERT_NE(blas, nullptr);
  EXPECT_EQ(blas->version, "1.0");
  EXPECT_EQ(blas->variant, Variant::optimized);
  EXPECT_EQ(blas->depends, (std::vector<std::string>{"libm", "libc"}));
  EXPECT_EQ(blas->attributes.at("libspeed"), "3.2");
  EXPECT_EQ(reloaded.value().owner_of("/usr/lib/libblas.so"), "libblas");
}

TEST(DatabaseTest, LoadFromEmptyImage) {
  vfs::Filesystem fs;
  auto db = Database::load(fs);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 0u);
}

TEST(DatabaseTest, ReplaceFlow) {
  // The libo adapter's mechanic: remove the generic package, install the
  // optimized one at the same paths.
  vfs::Filesystem fs;
  Database db;
  ASSERT_TRUE(db.install(fs, make_package("libblas")).ok());
  ASSERT_TRUE(db.remove(fs, "libblas").ok());
  Package optimized = make_package("libblas", {}, Variant::optimized);
  optimized.files[0].content = "optimized payload";
  ASSERT_TRUE(db.install(fs, optimized).ok());
  EXPECT_EQ(fs.read_file("/usr/lib/libblas.so").value(), "optimized payload");
  EXPECT_EQ(db.find("libblas")->variant, Variant::optimized);
}

}  // namespace
}  // namespace comt::pkg
