#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "oci/disk.hpp"

namespace comt::oci {
namespace {

namespace stdfs = std::filesystem;

/// Unique temp directory per test, removed on teardown.
class DiskLayoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = stdfs::temp_directory_path() /
           (std::string("comt-disk-") + info->name());
    stdfs::remove_all(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  stdfs::path dir_;
};

Layout sample_layout() {
  Layout layout;
  vfs::Filesystem base;
  EXPECT_TRUE(base.write_file("/etc/release", "v1\n").ok());
  vfs::Filesystem app;
  EXPECT_TRUE(app.write_file("/app/run", "#!payload\n", 0755).ok());
  ImageConfig config;
  config.config.entrypoint = {"/app/run"};
  auto image = layout.create_image(config, {base, app}, "demo:latest");
  EXPECT_TRUE(image.ok());
  auto second = layout.create_image(config, {base}, "base:latest");
  EXPECT_TRUE(second.ok());
  return layout;
}

TEST_F(DiskLayoutTest, SaveProducesOciLayoutStructure) {
  Layout layout = sample_layout();
  ASSERT_TRUE(save_layout(layout, dir()).ok());
  EXPECT_TRUE(stdfs::exists(dir_ / "oci-layout"));
  EXPECT_TRUE(stdfs::exists(dir_ / "index.json"));
  EXPECT_TRUE(stdfs::is_directory(dir_ / "blobs" / "sha256"));
  // Every blob file's name matches its content digest.
  for (const auto& entry : stdfs::directory_iterator(dir_ / "blobs" / "sha256")) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(Digest::of_blob(content).value, "sha256:" + entry.path().filename().string());
  }
}

TEST_F(DiskLayoutTest, RoundTripPreservesImages) {
  Layout layout = sample_layout();
  ASSERT_TRUE(save_layout(layout, dir()).ok());
  auto loaded = load_layout(dir());
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().tags(), layout.tags());
  auto original = layout.find_image("demo:latest");
  auto restored = loaded.value().find_image("demo:latest");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().manifest_digest, original.value().manifest_digest);
  auto rootfs = loaded.value().flatten(restored.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_EQ(rootfs.value().read_file("/app/run").value(), "#!payload\n");
  EXPECT_TRUE(loaded.value().fsck().ok());
}

TEST_F(DiskLayoutTest, SharedBlobsWrittenOnce) {
  Layout layout = sample_layout();  // both images share the base layer
  ASSERT_TRUE(save_layout(layout, dir()).ok());
  std::size_t files = 0;
  for (const auto& entry : stdfs::directory_iterator(dir_ / "blobs" / "sha256")) {
    (void)entry;
    ++files;
  }
  // 2 manifests + 2 configs (diff_ids differ) + 2 distinct layers = 6 blobs;
  // the shared base layer appears exactly once.
  EXPECT_EQ(files, 6u);
}

TEST_F(DiskLayoutTest, LoadMissingDirectoryFails) {
  auto result = load_layout(dir() + "-nonexistent");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST_F(DiskLayoutTest, TamperedBlobDetectedOnLoad) {
  Layout layout = sample_layout();
  ASSERT_TRUE(save_layout(layout, dir()).ok());
  // Corrupt the largest blob (a layer).
  stdfs::path victim;
  std::uintmax_t largest = 0;
  for (const auto& entry : stdfs::directory_iterator(dir_ / "blobs" / "sha256")) {
    if (entry.file_size() > largest) {
      largest = entry.file_size();
      victim = entry.path();
    }
  }
  std::ofstream(victim, std::ios::binary) << "tampered";
  auto result = load_layout(dir());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);
}

TEST_F(DiskLayoutTest, MissingBlobDetectedOnLoad) {
  Layout layout = sample_layout();
  ASSERT_TRUE(save_layout(layout, dir()).ok());
  // Delete one layer blob out from under the index.
  stdfs::path victim;
  std::uintmax_t largest = 0;
  for (const auto& entry : stdfs::directory_iterator(dir_ / "blobs" / "sha256")) {
    if (entry.file_size() > largest) {
      largest = entry.file_size();
      victim = entry.path();
    }
  }
  ASSERT_TRUE(stdfs::remove(victim));
  auto result = load_layout(dir());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST_F(DiskLayoutTest, SaveLeavesOnlySpecFiles) {
  // The on-disk format is exactly the OCI image-layout spec: oci-layout,
  // index.json, and blobs/sha256/<hex> — no framing, no temp litter. This
  // pins byte-compatibility now that save/load ride on store::DiskStore.
  Layout layout = sample_layout();
  ASSERT_TRUE(save_layout(layout, dir()).ok());
  std::vector<std::string> top;
  for (const auto& entry : stdfs::directory_iterator(dir_)) {
    top.push_back(entry.path().filename().string());
  }
  std::sort(top.begin(), top.end());
  EXPECT_EQ(top, (std::vector<std::string>{"blobs", "index.json", "oci-layout"}));
  for (const auto& entry : stdfs::recursive_directory_iterator(dir_)) {
    std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << entry.path();
  }
  // Blob files hold raw content bytes — readable with plain ifstream, and a
  // second save over the same directory is a no-op for existing blobs.
  ASSERT_TRUE(save_layout(layout, dir()).ok());
  auto reloaded = load_layout(dir());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().to_string();
  EXPECT_TRUE(reloaded.value().fsck().ok());
}

}  // namespace
}  // namespace comt::oci
