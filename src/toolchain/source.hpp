// Synthetic-source analysis.
//
// Workload source files are C/C++-looking text carrying `@comt-kernel`
// annotations that describe the performance-relevant structure of each
// translation unit: how much work its kernels do and how that work divides
// into vectorizable compute, memory-bound traffic, cross-TU call overhead,
// branchy control flow, library calls and MPI communication. The simulated
// compiler reads these instead of parsing real C++ — everything else about
// the compilation pipeline (flags, objects, archives, linking, LTO, PGO) is
// real. See DESIGN.md §5 for the execution-time model these fields feed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::toolchain {

/// Static performance traits of one kernel, as annotated in its source.
struct KernelTrait {
  std::string name;
  double work = 0;  ///< abstract work units (scaled by the run's input)

  // Fractions of the kernel's work, by bottleneck. The remainder
  // (1 - vec - mem - call - branch - lib) is plain scalar compute.
  double frac_vec = 0;     ///< vectorizable compute (benefits from -march)
  double frac_mem = 0;     ///< memory-bandwidth bound
  double frac_call = 0;    ///< cross-TU call overhead (LTO-sensitive)
  double frac_branch = 0;  ///< branch-miss bound (PGO-sensitive)
  double frac_lib = 0;     ///< spent inside `lib` routines
  std::string lib;         ///< library the lib fraction calls ("blas", "m", …)

  /// Communication coefficient: multi-node runs add
  /// work·frac_comm·f(nodes)/fabric_speed seconds (zero on one node).
  double frac_comm = 0;

  /// Response to aggressive vendor-toolchain optimization, multiplied by the
  /// toolchain's aggressiveness; negative models miscompiled-for-speed cases
  /// (the paper's hpccg regression).
  double aggr_response = 0;
  /// Fraction of call overhead LTO's cross-TU inlining removes for this
  /// kernel; negative models LTO-induced regressions.
  double lto_response = 0;
  /// Fraction of branch cost PGO removes when a matching profile is fed
  /// back; negative models profile-mismatch regressions.
  double pgo_response = 0;

  bool operator==(const KernelTrait&) const = default;
};

/// Result of analyzing one source file.
struct SourceInfo {
  std::vector<KernelTrait> kernels;
  std::vector<std::string> includes;   ///< local "..." includes, as written
  bool uses_mpi = false;               ///< includes <mpi.h>
  /// ISAs this file hard-codes (inline asm / ISA-specific intrinsics),
  /// from `@comt-isa <arch>` markers; non-empty blocks cross-ISA rebuilds.
  std::vector<std::string> isa_specific;
  int line_count = 0;
};

/// Parses the annotations out of a source file. Unannotated files are valid
/// (headers, plain data code) and yield zero kernels.
Result<SourceInfo> analyze_source(std::string_view content);

/// Options for generating a synthetic source file (used by the workload
/// corpus and by tests).
struct SourceGenSpec {
  std::string unit_name;        ///< e.g. "lulesh_main"
  std::vector<KernelTrait> kernels;
  std::vector<std::string> includes;
  bool uses_mpi = false;
  std::vector<std::string> isa_specific;
  int filler_lines = 40;        ///< plausible-looking code lines to emit
};

/// Emits a C++-looking file containing the annotations `analyze_source`
/// parses back, plus deterministic filler so file sizes are realistic.
std::string generate_source(const SourceGenSpec& spec);

/// Obfuscates a source file for distribution (§4.6: cached sources "can be
/// obfuscated to protect intellectual property while still enabling all the
/// system-side adaptation and optimizations"). Semantic lines — kernel
/// annotations, ISA markers, includes — survive verbatim; every other line
/// is replaced by an opaque token of similar length. analyze_source() of the
/// result equals analyze_source() of the original, so rebuilds see the same
/// translation unit.
std::string obfuscate_source(std::string_view content);

}  // namespace comt::toolchain
