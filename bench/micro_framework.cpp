// Framework micro-benchmarks (google-benchmark): the coMtainer machinery
// costs the paper treats qualitatively — image flattening, layer packing,
// digesting, GCC command-line parsing, build-graph serialization, dependency
// resolution, and the full user-side/system-side pipeline stages.
#include <benchmark/benchmark.h>

#include "core/backend.hpp"
#include "core/frontend.hpp"
#include "pkg/pkg.hpp"
#include "support/sha256.hpp"
#include "tar/tar.hpp"
#include "toolchain/options.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

const workloads::AppSpec& lammps() {
  const workloads::AppSpec* app = workloads::find_app("lammps");
  COMT_ASSERT(app != nullptr, "lammps missing");
  return *app;
}

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hex_digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_TarPackUnpack(benchmark::State& state) {
  vfs::Filesystem tree = workloads::build_context(lammps());
  for (auto _ : state) {
    std::string blob = tar::pack(tree);
    auto back = tar::unpack(blob);
    benchmark::DoNotOptimize(back.ok());
  }
}
BENCHMARK(BM_TarPackUnpack);

void BM_GccCommandParse(benchmark::State& state) {
  std::vector<std::string> argv = {
      "gcc",  "-O3",      "-march=x86-64-v3", "-mtune=native", "-ffast-math",
      "-fno-math-errno", "-funroll-loops",   "-flto=auto",    "-fprofile-use=prof",
      "-Wall", "-Wextra", "-Wno-unused-parameter", "-Iinclude", "-I/usr/local/include",
      "-DNDEBUG", "-DUSE_MPI=1", "-c", "kernel.cc", "-o", "kernel.o"};
  for (auto _ : state) {
    auto parsed = toolchain::parse_command(argv);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_GccCommandParse);

void BM_GccCommandRoundTrip(benchmark::State& state) {
  std::vector<std::string> argv = {"g++", "-O2", "-std=c++20", "-fPIC", "-shared",
                                   "a.o", "b.o", "-Ldeps", "-lblas", "-lm",
                                   "-Wl,-rpath,/opt/lib", "-o", "libx.so"};
  auto parsed = toolchain::parse_command(argv);
  COMT_ASSERT(parsed.ok(), "parse failed");
  for (auto _ : state) {
    auto rendered = parsed.value().render();
    auto reparsed = toolchain::parse_command(rendered);
    benchmark::DoNotOptimize(reparsed.ok());
  }
}
BENCHMARK(BM_GccCommandRoundTrip);

void BM_DependencyResolve(benchmark::State& state) {
  const pkg::Repository& repo = workloads::ubuntu_repo("amd64");
  for (auto _ : state) {
    auto plan = pkg::resolve(repo, {"build-essential", "libscalapack", "libelpa",
                                    "libxc", "mpich"});
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_DependencyResolve);

void BM_ImageFlatten(benchmark::State& state) {
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(lammps());
  COMT_ASSERT(prepared.ok(), "prepare failed");
  auto image = world.layout().find_image(prepared.value().dist_tag);
  COMT_ASSERT(image.ok(), "image missing");
  for (auto _ : state) {
    auto rootfs = world.layout().flatten(image.value());
    benchmark::DoNotOptimize(rootfs.ok());
  }
}
BENCHMARK(BM_ImageFlatten);

void BM_UserSidePipeline(benchmark::State& state) {
  // Full user-side flow: two-stage image build + analysis + cache layer.
  const workloads::AppSpec* app = workloads::find_app("lulesh");
  for (auto _ : state) {
    workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
    auto prepared = world.prepare(*app);
    benchmark::DoNotOptimize(prepared.ok());
  }
}
BENCHMARK(BM_UserSidePipeline)->Unit(benchmark::kMillisecond);

void BM_SystemSideRebuild(benchmark::State& state) {
  const workloads::AppSpec* app = workloads::find_app("lulesh");
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  COMT_ASSERT(prepared.ok(), "prepare failed");
  for (auto _ : state) {
    auto tag = world.adapt(*app, prepared.value());
    benchmark::DoNotOptimize(tag.ok());
  }
}
BENCHMARK(BM_SystemSideRebuild)->Unit(benchmark::kMillisecond);

void BM_BuildGraphSerialize(benchmark::State& state) {
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(lammps());
  COMT_ASSERT(prepared.ok(), "prepare failed");
  auto extended = world.layout().find_image(prepared.value().extended_tag);
  auto rootfs = world.layout().flatten(extended.value());
  auto bundle = core::load_cache(rootfs.value());
  COMT_ASSERT(bundle.ok(), "cache load failed");
  for (auto _ : state) {
    std::string text = json::serialize(bundle.value().models.graph.to_json());
    auto parsed = json::parse(text);
    auto graph = core::BuildGraph::from_json(parsed.value());
    benchmark::DoNotOptimize(graph.ok());
  }
}
BENCHMARK(BM_BuildGraphSerialize);

}  // namespace

BENCHMARK_MAIN();
