// The simulated build container: an in-memory rootfs plus an image config,
// a working directory and an environment, executing RUN command lines through
// the shell front end. Shell builtins cover the file utilities build scripts
// use; everything else resolves through $PATH to an installed program — a
// compiler stub (dispatched to the toolchain driver), the archiver, the apt
// front end, or the make interpreter. With a recorder attached, every command
// is logged as a ToolInvocation (the paper's build-process hijack, §4.1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "buildexec/record.hpp"
#include "oci/oci.hpp"
#include "pkg/pkg.hpp"
#include "shell/shell.hpp"
#include "vfs/vfs.hpp"

namespace comt::buildexec {

/// Outcome of resolving and executing one non-builtin tool.
struct ToolExecution {
  std::vector<std::string> outputs;      ///< absolute paths written
  std::vector<std::string> inputs_read;  ///< absolute paths consumed
  std::string resolved_program;          ///< where argv[0] resolved to
  std::string toolchain_id;              ///< set for compiler dispatches
  std::string log;
};

/// Resolves argv[0] (against $PATH from `env`, or as a path relative to
/// `cwd`) inside `fs` and executes the program it names: a compiler stub runs
/// the toolchain driver for `arch`, /usr/bin/ar runs the archiver, coMtainer
/// toolset stubs are no-ops. Exposed separately from Container so the rebuild
/// scheduler can run compile jobs against private filesystem snapshots.
Result<ToolExecution> exec_tool(const std::vector<std::string>& argv,
                                vfs::Filesystem& fs, const std::string& cwd,
                                const std::string& arch,
                                const shell::Environment& env);

class Container {
 public:
  /// `apt_source` may be null: apt-get then fails, as without sources.list.
  Container(vfs::Filesystem rootfs, oci::ImageConfig config,
            const pkg::Repository* apt_source);

  vfs::Filesystem& rootfs() { return rootfs_; }
  const vfs::Filesystem& rootfs() const { return rootfs_; }
  oci::ImageConfig& config() { return config_; }
  const oci::ImageConfig& config() const { return config_; }

  const std::string& cwd() const { return cwd_; }
  void set_cwd(std::string cwd) { cwd_ = std::move(cwd); }

  shell::Environment& env() { return env_; }
  const shell::Environment& env() const { return env_; }

  /// Attaches (or detaches, with nullptr) the hijacker's log. Every
  /// subsequently executed command — builtin or tool — is appended to it.
  void attach_recorder(BuildRecord* record) { record_ = record; }

  /// Runs a full shell line (`&&`/`;` lists, quoting, $VAR expansion).
  Status run_shell(std::string_view line);

  /// Runs a single pre-tokenized command.
  Status run_argv(const std::vector<std::string>& argv);

 private:
  Status execute(const std::vector<std::string>& argv);
  Status dispatch(const std::vector<std::string>& argv, ToolInvocation& invocation);
  Status builtin_apt(const std::vector<std::string>& argv);

  vfs::Filesystem rootfs_;
  oci::ImageConfig config_;
  const pkg::Repository* apt_source_ = nullptr;
  std::string cwd_ = "/";
  shell::Environment env_;
  BuildRecord* record_ = nullptr;
};

}  // namespace comt::buildexec
