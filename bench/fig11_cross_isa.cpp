// Reproduces Figure 11 and §5.5 (attempts to cross ISA):
//  1. For every workload, the build-script line changes needed to cross from
//     x86-64 to AArch64 via coMtainer (drop ISA-specific flags) versus via
//     traditional cross-compilation (cross toolchain, sysroot, triplets).
//  2. Actually performs the coMtainer cross-ISA flow for each portable app:
//     build the extended image on x86-64, rebuild + redirect it on the
//     AArch64 system with the cross-ISA adapter, and run the result.
//  3. Demonstrates that ISA-locked applications fail honestly.
#include <cstdio>
#include <string>
#include <vector>

#include "buildexec/builder.hpp"
#include "core/backend.hpp"
#include "dockerfile/dockerfile.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

/// Runs the whole cross-ISA pipeline for one app; returns the AArch64
/// execution time, or the failure.
Result<double> cross_pipeline(const workloads::AppSpec& app, bool use_portable_script) {
  const sysmodel::SystemProfile& target = sysmodel::SystemProfile::aarch64_cluster();
  oci::Layout layout;
  // User side is an x86-64 machine; system side is the AArch64 cluster.
  COMT_TRY_STATUS(workloads::install_user_images(layout, "amd64"));
  COMT_TRY_STATUS(workloads::install_system_images(layout, target));

  std::string script = use_portable_script
                           ? workloads::dockerfile_cross_comt(app, "amd64")
                           : workloads::dockerfile_text(app, "amd64", true);
  COMT_TRY(dockerfile::Dockerfile file, dockerfile::parse(script));
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));
  buildexec::BuildRecord record;
  std::string dist_tag = app.name + ".dist";
  COMT_TRY(oci::Image dist,
           builder.build(file, workloads::build_context(app), dist_tag, "", &record));
  (void)dist;
  COMT_TRY(oci::Image build_stage, layout.find_image(dist_tag + ".stage0"));
  COMT_TRY(vfs::Filesystem build_rootfs, layout.flatten(build_stage));
  COMT_TRY(oci::Image extended,
           core::comtainer_build(layout, dist_tag, workloads::base_tag("amd64"), record,
                                 build_rootfs));
  (void)extended;

  // System side: cross-ISA rebuild.
  core::CrossIsaAdapter cross;
  core::LibraryAdapter libo;
  core::ToolchainAdapter cxxo;
  core::RebuildOptions rebuild_options;
  rebuild_options.system = &target;
  rebuild_options.system_repo = &workloads::system_repo(target);
  rebuild_options.sysenv_tag = workloads::sysenv_tag(target);
  rebuild_options.adapters = {&cross, &libo, &cxxo};
  COMT_TRY(core::RebuildReport rebuilt,
           core::comtainer_rebuild(layout, dist_tag + "+coM", rebuild_options));
  (void)rebuilt;

  core::RedirectOptions redirect_options;
  redirect_options.system = &target;
  redirect_options.system_repo = &workloads::system_repo(target);
  redirect_options.rebase_tag = workloads::rebase_tag(target);
  COMT_TRY(core::RedirectReport redirected,
           core::comtainer_redirect(layout, dist_tag + "+coMre", redirect_options));

  COMT_TRY(vfs::Filesystem rootfs, layout.flatten(redirected.image));
  sysmodel::ExecutionEngine engine(target);
  COMT_TRY(sysmodel::RunReport report,
           engine.run(rootfs, app.binary_path(),
                      app.inputs.front().run_request(target.nodes)));
  return report.seconds;
}

}  // namespace

int main() {
  std::printf("Figure 11 / §5.5 — crossing ISAs: x86-64 images on the AArch64 system\n\n");
  std::printf("%-10s %9s %9s %9s %9s   %s\n", "app", "comt +", "comt -", "xbuild +",
              "xbuild -", "cross-ISA rebuild");

  double comt_total = 0, xbuild_total = 0;
  int crossed = 0;
  for (const workloads::AppSpec& app : workloads::corpus()) {
    std::string original = workloads::dockerfile_text(app, "amd64", true);
    std::string comt_script = workloads::dockerfile_cross_comt(app, "amd64");
    std::string xbuild_script = workloads::dockerfile_xbuild(app, "amd64", "arm64");
    auto [comt_added, comt_deleted] = dockerfile::line_diff(original, comt_script);
    auto [xb_added, xb_deleted] = dockerfile::line_diff(original, xbuild_script);

    std::string outcome;
    if (app.isa_locked) {
      // Expected to fail even with the portable script: the source tree
      // itself pins the ISA. Demonstrate with the unmodified script.
      auto attempt = cross_pipeline(app, /*use_portable_script=*/false);
      outcome = attempt.ok() ? "UNEXPECTEDLY OK"
                             : "fails (ISA-specific sources)";
    } else {
      auto attempt = cross_pipeline(app, /*use_portable_script=*/true);
      if (attempt.ok()) {
        char buffer[64];
        std::snprintf(buffer, sizeof buffer, "ok, runs in %.2fs on AArch64",
                      attempt.value());
        outcome = buffer;
        comt_total += comt_added + comt_deleted;
        xbuild_total += xb_added + xb_deleted;
        ++crossed;
      } else {
        outcome = "FAILED: " + attempt.error().message;
      }
    }
    std::printf("%-10s %9d %9d %9d %9d   %s\n", app.name.c_str(), comt_added,
                comt_deleted, xb_added, xb_deleted, outcome.c_str());
  }

  if (crossed > 0) {
    std::printf("\n  %d of %zu apps crossed; avg script changes: coMtainer %.1f lines "
                "vs cross-build %.1f lines\n",
                crossed, workloads::corpus().size(), comt_total / crossed,
                xbuild_total / crossed);
  }
  std::printf("  paper: ~5 lines with coMtainer vs ~47 with cross-compilation "
              "(10%% of the effort); ISA-locked apps fail\n");
  return 0;
}
