// Assorted edge cases across modules that the per-module suites don't pin.
#include <gtest/gtest.h>

#include "json/json.hpp"
#include "oci/convert.hpp"
#include "sysmodel/sysmodel.hpp"
#include "toolchain/options.hpp"
#include "vfs/vfs.hpp"

namespace comt {
namespace {

TEST(VfsEdgeTest, ListDirectoryOfFileFails) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file("/f", "x").ok());
  auto result = fs.list_directory("/f");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::invalid_argument);
  EXPECT_FALSE(fs.list_directory("/missing").ok());
}

TEST(VfsEdgeTest, ResolveOfAbsentPathIsJustThePath) {
  // resolve() normalizes and follows links; a dangling path resolves to
  // itself (the caller then gets not_found from the actual access).
  vfs::Filesystem fs;
  EXPECT_EQ(fs.resolve("/no/such//./thing").value(), "/no/such/thing");
}

TEST(VfsEdgeTest, SymlinkThroughDirectoryComponent) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file("/real/dir/file", "x").ok());
  ASSERT_TRUE(fs.make_symlink("/alias", "/real/dir").ok());
  // Final-component resolution works; intermediate-component link chasing is
  // not implemented (documented limitation — layers never rely on it).
  EXPECT_EQ(fs.resolve("/alias").value(), "/real/dir");
}

TEST(VfsEdgeTest, EmptyDirectoryDiffRoundTrip) {
  vfs::Filesystem base;
  vfs::Filesystem target;
  ASSERT_TRUE(target.make_directories("/only/dirs/here").ok());
  vfs::LayerDiff delta = vfs::diff(base, target);
  EXPECT_EQ(delta.added, 3u);
  vfs::Filesystem rebuilt = base;
  ASSERT_TRUE(vfs::apply_layer(rebuilt, delta.upper).ok());
  EXPECT_TRUE(rebuilt == target);
}

TEST(JsonEdgeTest, SerializationIsAFixedPoint) {
  for (const char* text :
       {"[0.5,1,100000,1e-05]", R"({"a":1,"b":[true,null]})", "[[[[[1]]]]]"}) {
    auto first = json::parse(text);
    ASSERT_TRUE(first.ok());
    std::string once = json::serialize(first.value());
    auto second = json::parse(once);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(json::serialize(second.value()), once);
  }
}

TEST(JsonEdgeTest, LargeIntegersSurvive) {
  auto parsed = json::parse("123456789012345");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_int(), 123456789012345LL);
  EXPECT_EQ(json::serialize(parsed.value()), "123456789012345");
}

TEST(OptionsEdgeTest, InputsBeforeAndAfterOptions) {
  auto cmd = toolchain::parse_command(
      std::vector<std::string>{"gcc", "early.o", "-O2", "late.o", "-o", "out"});
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().inputs, (std::vector<std::string>{"early.o", "late.o"}));
}

TEST(OptionsEdgeTest, OutputJoinedSpelling) {
  auto cmd = toolchain::parse_command(std::vector<std::string>{"gcc", "-oout", "x.o"});
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().output, "out");
}

TEST(OptionsEdgeTest, DoubleDashOptionsSurvive) {
  auto cmd = toolchain::parse_command(
      std::vector<std::string>{"gcc", "--version"});
  ASSERT_TRUE(cmd.ok());
  bool saw = false;
  for (const auto& option : cmd.value().generic) saw |= option.name == "--version";
  EXPECT_TRUE(saw);
}

TEST(SysmodelEdgeTest, WorkstationProfileIsSlowerThanCluster) {
  const sysmodel::SystemProfile& workstation = sysmodel::SystemProfile::user_workstation();
  const sysmodel::SystemProfile& cluster = sysmodel::SystemProfile::x86_cluster();
  EXPECT_EQ(workstation.arch, "amd64");
  EXPECT_EQ(workstation.nodes, 1);
  EXPECT_LT(workstation.scalar_ips, cluster.scalar_ips);
  EXPECT_LT(workstation.max_lanes, cluster.max_lanes);
  // The workstation tunes for what distro compilers emit — the whole reason
  // generic images look fine locally and only disappoint on the cluster.
  EXPECT_TRUE(workstation.march_is_tuned("x86-64"));
  EXPECT_FALSE(cluster.march_is_tuned("x86-64"));
}

TEST(ConvertEdgeTest, FlatImageOfEmptyImage) {
  oci::Layout layout;
  oci::ImageConfig config;
  auto image = layout.create_image(config, {vfs::Filesystem{}}, "empty");
  ASSERT_TRUE(image.ok());
  auto flat = oci::to_flat_image(layout, image.value());
  ASSERT_TRUE(flat.ok());
  EXPECT_TRUE(flat.value().rootfs.is_regular("/ch/environment"));
  auto sif = oci::to_sif(layout, image.value());
  ASSERT_TRUE(sif.ok());
  auto back = oci::from_sif(sif.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().entrypoint.empty());
}

}  // namespace
}  // namespace comt
