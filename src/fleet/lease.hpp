// Store-backed lease protocol: the arbitration layer that makes N rebuild
// replicas over one shared substrate behave like one logical service.
//
// A replica about to build the job keyed K (extended-image manifest digest +
// target-system fingerprint) first consults two well-known keys in the
// shared store:
//
//   fleet/done/<K>   — the global memo: "name:tag" of the image some replica
//                      already built and pushed for K. Present → reuse, no
//                      toolchain, no lease.
//   fleet/lease/<K>  — the mutual exclusion record: {owner, epoch, deadline}.
//                      Claimed with compare_and_put, so exactly one replica
//                      wins; everyone else polls until the holder publishes
//                      its done marker or the lease's TTL lapses.
//
// Failure/takeover state machine:
//
//        ┌────────── done marker present ──────────▶ reuse (no build)
//   K ───┤
//        │   CAS claim wins                 build OK: put done marker,
//        ├─────────────────────▶ holder ───────────▶ then erase lease
//        │                        │   build fails: erase lease (no marker)
//        │   lease held, alive    │   crash: lease left to rot
//        └──▶ wait (poll) ◀───────┘
//              │       deadline passed
//              └─────────────────────▶ CAS steal (epoch+1) ──▶ holder
//
// The holder publishes the done marker BEFORE erasing its lease, and a
// claimer re-checks the marker right after winning, so a waiter can never
// slip between "marker not yet visible" and "lease gone" into a duplicate
// build. A crashed holder (injected crash unwinding the worker) releases
// nothing — its record sits in the store until the TTL lapses and a rival's
// CAS bumps the epoch; the thief then resumes from the crashed holder's
// write-ahead journal, the same durable path a restarted single service
// uses. Records carry an fnv1a64 trailer; a torn record decodes as invalid
// and is claimable like an absent one (compare_and_put treats stored-corrupt
// as absent for the same reason).
//
// Size the TTL above the worst-case build: there is no background renewal,
// so a live build that outlasts its lease can be (harmlessly but wastefully)
// duplicated by a thief.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "registry/registry.hpp"
#include "service/service.hpp"
#include "store/store.hpp"
#include "support/error.hpp"

namespace comt::fleet {

/// Shared-store keyspaces the protocol lives in.
inline constexpr std::string_view kLeasePrefix = "fleet/lease/";
inline constexpr std::string_view kDonePrefix = "fleet/done/";

/// One lease record as stored under fleet/lease/<key>.
struct LeaseRecord {
  std::string owner;            ///< replica id holding the lease
  std::uint64_t epoch = 0;      ///< bumped by every steal; guards release
  std::uint64_t deadline_ms = 0;  ///< steady-clock ms when the lease expires

  bool operator==(const LeaseRecord&) const = default;
};

/// Wire form: [str owner][u64 epoch][u64 deadline][u64 fnv1a64(payload)].
std::string encode_lease(const LeaseRecord& record);

/// nullopt on any damage — truncation, trailing garbage, checksum mismatch.
std::optional<LeaseRecord> decode_lease(std::string_view encoded);

/// Steady-clock milliseconds, the protocol's shared clock. All replicas of
/// this in-process fleet read the same clock, mirroring the synchronized
/// clocks a site deployment's lease service assumes.
std::uint64_t lease_now_ms();

/// The fleet's service::FleetCoordinator: one instance per replica, all over
/// the same shared store. Thread-safe (all state lives in the store).
class LeaseCoordinator final : public service::FleetCoordinator {
 public:
  struct Options {
    std::string replica_id;
    /// Lease lifetime. Must exceed the worst-case build (no renewal).
    std::chrono::milliseconds ttl{2000};
    /// Waiter poll interval.
    std::chrono::milliseconds poll{1};
    /// acquire() gives up (degrading the caller to an uncoordinated build)
    /// after waiting this long.
    std::chrono::milliseconds max_wait{30000};
  };

  /// `hub`, when non-null, validates done markers before reuse: a marker
  /// whose image no longer resolves is erased and the key rebuilt.
  LeaseCoordinator(std::shared_ptr<store::KvStore> store, registry::Registry* hub,
                   Options options);

  Result<Grant> acquire(const std::string& key) override;
  void release(const std::string& key, Outcome outcome, const std::string& output,
               std::uint64_t epoch) override;

  /// Counters "fleet.lease.acquired" (build grants), "fleet.lease.steals",
  /// "fleet.lease.reused" (done-marker grants), "fleet.lease.waits"
  /// (acquires that had to poll), "fleet.lease.releases", and gauge
  /// "fleet.lease.wait_ms" (summed wait time). Wire up before sharing.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Current lease record for `key`, nullopt when absent or undecodable —
  /// tests and operators inspecting the protocol state.
  std::optional<LeaseRecord> read_lease(const std::string& key) const;

  /// Current done marker ("name:tag") for `key`, nullopt when absent.
  std::optional<std::string> read_done(const std::string& key) const;

  const std::string& replica_id() const { return options_.replica_id; }

 private:
  /// True when `output` ("name:tag") still resolves in the hub (or no hub
  /// was given to validate against).
  bool output_resolves(const std::string& output) const;
  /// The post-claim marker re-check that closes the marker/lease race; on a
  /// visible marker the fresh lease is dropped and reuse granted instead.
  std::optional<Grant> reuse_after_claim(const std::string& key, double wait_ms);
  void note(obs::Counter* counter) const;

  std::shared_ptr<store::KvStore> store_;
  registry::Registry* hub_ = nullptr;
  Options options_;
  obs::Counter* acquired_ = nullptr;
  obs::Counter* steals_ = nullptr;
  obs::Counter* reused_ = nullptr;
  obs::Counter* waits_ = nullptr;
  obs::Counter* releases_ = nullptr;
  obs::Gauge* wait_ms_ = nullptr;
};

}  // namespace comt::fleet
