#!/usr/bin/env bash
# CI entry point: configure, build, run the full test suite, then smoke-test
# the parallel-rebuild benchmark (which also asserts that parallel rebuilds
# are bit-identical and that a warm compile cache hits 100%).
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== configure =="
cmake -B "$build_dir" -S "$repo"

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== bench smoke =="
"$build_dir/bench/parallel_rebuild" --smoke

echo "check.sh: all green"
