#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace comt {
namespace {

// ---- Result / Status --------------------------------------------------------

Result<int> parse_positive(int value) {
  if (value <= 0) return make_error(Errc::invalid_argument, "not positive");
  return value;
}

TEST(ResultTest, SuccessCarriesValue) {
  Result<int> result = parse_positive(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_TRUE(static_cast<bool>(result));
}

TEST(ResultTest, ErrorCarriesCategoryAndMessage) {
  Result<int> result = parse_positive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::invalid_argument);
  EXPECT_EQ(result.error().to_string(), "invalid_argument: not positive");
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(parse_positive(-5).value_or(42), 42);
  EXPECT_EQ(parse_positive(5).value_or(42), 5);
}

Result<int> doubled(int value) {
  COMT_TRY(int positive, parse_positive(value));
  return positive * 2;
}

TEST(ResultTest, TryMacroPropagates) {
  EXPECT_EQ(doubled(4).value(), 8);
  EXPECT_FALSE(doubled(-4).ok());
  EXPECT_EQ(doubled(-4).error().code, Errc::invalid_argument);
}

TEST(StatusTest, DefaultIsSuccess) {
  Status status;
  EXPECT_TRUE(status.ok());
}

TEST(StatusTest, ErrorStatus) {
  Status status = make_error(Errc::not_found, "nope");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::not_found);
}

TEST(ErrcTest, AllNamesDistinct) {
  EXPECT_STREQ(errc_name(Errc::invalid_argument), "invalid_argument");
  EXPECT_STREQ(errc_name(Errc::not_found), "not_found");
  EXPECT_STREQ(errc_name(Errc::already_exists), "already_exists");
  EXPECT_STREQ(errc_name(Errc::corrupt), "corrupt");
  EXPECT_STREQ(errc_name(Errc::unsupported), "unsupported");
  EXPECT_STREQ(errc_name(Errc::failed), "failed");
}

// ---- SHA-256 -----------------------------------------------------------------

TEST(Sha256Test, KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(Sha256::hex_digest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::hex_digest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::hex_digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha256::hex_digest(input),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog, repeatedly";
  Sha256 hasher;
  // Feed in awkward chunk sizes crossing block boundaries.
  for (std::size_t i = 0; i < data.size(); i += 7) {
    hasher.update(data.substr(i, 7));
  }
  auto digest = hasher.finish();
  EXPECT_EQ(to_hex(digest.data(), digest.size()), Sha256::hex_digest(data));
}

TEST(Sha256Test, BlockBoundaryLengths) {
  // 55/56/63/64/65 bytes hit every padding branch.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string data(n, 'x');
    Sha256 hasher;
    hasher.update(data);
    auto digest = hasher.finish();
    EXPECT_EQ(to_hex(digest.data(), digest.size()), Sha256::hex_digest(data)) << n;
  }
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(Sha256::hex_digest("a"), Sha256::hex_digest("b"));
}

// ---- strings ------------------------------------------------------------------

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitWhitespaceSkipsRuns) {
  EXPECT_EQ(split_whitespace("  a \t b\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_whitespace("   ").empty());
  EXPECT_TRUE(split_whitespace("").empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t\na b\r\n"), "a b");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsContains) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(contains("foobar", "oba"));
  EXPECT_FALSE(contains("foobar", "xyz"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none here", "xyz", "!"), "none here");
  EXPECT_EQ(replace_all("x", "", "!"), "x");  // empty needle is a no-op
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
}

TEST(PathsTest, NormalizeCollapses) {
  EXPECT_EQ(normalize_path("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(normalize_path("/a/b/../c"), "/a/c");
  EXPECT_EQ(normalize_path("/../x"), "/x");  // lexical: .. above root drops
  EXPECT_EQ(normalize_path("a/../../b"), "../b");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path(""), ".");
  EXPECT_EQ(normalize_path("./"), ".");
}

TEST(PathsTest, Join) {
  EXPECT_EQ(path_join("/usr", "bin"), "/usr/bin");
  EXPECT_EQ(path_join("/usr/", "/etc"), "/etc");  // absolute tail wins
  EXPECT_EQ(path_join("/a/b", "../c"), "/a/c");
  EXPECT_EQ(path_join("", "x"), "x");
}

TEST(PathsTest, DirnameBasename) {
  EXPECT_EQ(path_dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(path_dirname("/x"), "/");
  EXPECT_EQ(path_dirname("plain"), ".");
  EXPECT_EQ(path_basename("/a/b/c"), "c");
  EXPECT_EQ(path_basename("/"), "/");
  EXPECT_EQ(path_basename("plain"), "plain");
}

TEST(PathsTest, Extension) {
  EXPECT_EQ(path_extension("a/b.c.o"), ".o");
  EXPECT_EQ(path_extension("noext"), "");
  EXPECT_EQ(path_extension("/.hidden"), "");  // leading dot is not an extension
  EXPECT_EQ(path_extension("x.tar"), ".tar");
}

// ---- FaultInjector ----------------------------------------------------------

TEST(FaultInjectorTest, UnarmedSiteAlwaysSucceeds) {
  support::FaultInjector faults;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(faults.check("quiet").ok());
  EXPECT_EQ(faults.calls("quiet"), 5u);
  EXPECT_EQ(faults.injected("quiet"), 0u);
  EXPECT_EQ(faults.calls("never-touched"), 0u);
}

TEST(FaultInjectorTest, FailNextFiresExactlyNTimes) {
  support::FaultInjector faults;
  faults.fail_next("pull", 2);
  auto first = faults.check("pull");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, Errc::failed);
  EXPECT_NE(first.error().message.find("pull"), std::string::npos);
  EXPECT_FALSE(faults.check("pull").ok());
  EXPECT_TRUE(faults.check("pull").ok());
  EXPECT_TRUE(faults.check("pull").ok());
  EXPECT_EQ(faults.injected("pull"), 2u);
}

TEST(FaultInjectorTest, FailEveryIsPeriodicFromArming) {
  support::FaultInjector faults;
  EXPECT_TRUE(faults.check("job").ok());  // pre-arming calls don't count
  faults.fail_every("job", 3);
  std::vector<bool> outcomes;
  for (int i = 0; i < 9; ++i) outcomes.push_back(faults.check("job").ok());
  // Calls 3, 6, 9 after arming fail.
  EXPECT_EQ(outcomes, (std::vector<bool>{true, true, false, true, true, false,
                                         true, true, false}));
  EXPECT_EQ(faults.injected("job"), 3u);
}

TEST(FaultInjectorTest, CustomCodeAndMessage) {
  support::FaultInjector faults;
  faults.fail_next("net", 1, Errc::corrupt, "checksum mismatch");
  auto status = faults.check("net");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::corrupt);
  EXPECT_NE(status.error().message.find("checksum mismatch"), std::string::npos);
}

TEST(FaultInjectorTest, SitesAreIndependentAndClearable) {
  support::FaultInjector faults;
  faults.fail_next("a", 100);
  faults.fail_every("b", 1);
  EXPECT_TRUE(faults.check("c").ok());  // other sites don't advance a/b
  EXPECT_FALSE(faults.check("a").ok());
  EXPECT_FALSE(faults.check("b").ok());
  faults.clear("a");
  EXPECT_TRUE(faults.check("a").ok());
  faults.clear_all();
  EXPECT_TRUE(faults.check("b").ok());
  EXPECT_EQ(faults.total_injected(), 2u);
}

TEST(FaultInjectorTest, CrashNextThrowsOnceThenDisarms) {
  support::FaultInjector faults;
  faults.check_crash("boot");  // unarmed: no throw
  faults.crash_next("boot");
  bool crashed = false;
  try {
    faults.check_crash("boot");
  } catch (const support::CrashInjected& crash) {
    crashed = true;
    EXPECT_EQ(crash.site, "boot");
    EXPECT_EQ(crash.call, 2u);
  }
  EXPECT_TRUE(crashed);
  // The schedule was consumed: a resumed run passes the same site.
  faults.check_crash("boot");
  EXPECT_EQ(faults.injected("boot"), 1u);
  EXPECT_EQ(faults.calls("boot"), 3u);
}

TEST(FaultInjectorTest, CrashAtTargetsTheNthLifetimeCall) {
  support::FaultInjector faults;
  faults.crash_at("job", 3);
  faults.check_crash("job");
  faults.check_crash("job");
  EXPECT_THROW(faults.check_crash("job"), support::CrashInjected);
  faults.check_crash("job");  // consumed
  faults.crash_at("job", 0);  // 0 disarms (already consumed; must not rearm)
  faults.check_crash("job");
  EXPECT_EQ(faults.injected("job"), 1u);
}

TEST(FaultInjectorTest, TornWriteKeepsAProperPrefix) {
  support::FaultInjector faults;
  EXPECT_EQ(faults.check_torn("disk", 100), std::nullopt);  // unarmed
  faults.tear_next("disk", 0.5);
  auto keep = faults.check_torn("disk", 100);
  ASSERT_TRUE(keep.has_value());
  EXPECT_EQ(*keep, 50u);
  EXPECT_EQ(faults.check_torn("disk", 100), std::nullopt);  // consumed

  // The kept prefix is always strictly shorter than the write, even at
  // fraction 1.0 — a torn write that persists everything is not torn.
  faults.tear_next("disk", 1.0);
  auto clamped = faults.check_torn("disk", 4);
  ASSERT_TRUE(clamped.has_value());
  EXPECT_EQ(*clamped, 3u);
  faults.tear_next("disk", 0.9);
  auto tiny = faults.check_torn("disk", 1);
  ASSERT_TRUE(tiny.has_value());
  EXPECT_EQ(*tiny, 0u);
}

TEST(FaultInjectorTest, TearAtAndClearDisarmCrashSchedules) {
  support::FaultInjector faults;
  faults.tear_at("disk", 2, 0.25);
  EXPECT_EQ(faults.check_torn("disk", 8), std::nullopt);
  auto keep = faults.check_torn("disk", 8);
  ASSERT_TRUE(keep.has_value());
  EXPECT_EQ(*keep, 2u);

  faults.crash_next("disk");
  faults.tear_next("disk");
  faults.clear("disk");
  faults.check_crash("disk");
  EXPECT_EQ(faults.check_torn("disk", 8), std::nullopt);
}

TEST(FaultInjectorTest, SiteCountsEnumerateEveryTouchedSite) {
  support::FaultInjector faults;
  EXPECT_TRUE(faults.site_counts().empty());

  faults.fail_next("remote.put", 1);
  (void)faults.check("remote.put");   // injected
  (void)faults.check("remote.put");   // clean
  (void)faults.check("remote.get");   // unarmed site still counted
  (void)faults.check("remote.get");

  auto counts = faults.site_counts();
  ASSERT_EQ(counts.size(), 2u);
  // Sorted by site name, so chaos tests can assert positionally.
  EXPECT_EQ(counts[0], (support::FaultInjector::SiteCount{"remote.get", 2, 0}));
  EXPECT_EQ(counts[1], (support::FaultInjector::SiteCount{"remote.put", 2, 1}));
}

TEST(FaultInjectorTest, ConcurrentChecksCountEveryCall) {
  support::FaultInjector faults;
  faults.fail_every("hot", 4);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&faults] {
      for (int i = 0; i < kCallsPerThread; ++i) (void)faults.check("hot");
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(faults.calls("hot"), static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  EXPECT_EQ(faults.injected("hot"), static_cast<std::uint64_t>(kThreads * kCallsPerThread / 4));
}

}  // namespace
}  // namespace comt
