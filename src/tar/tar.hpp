// POSIX ustar archives over in-memory filesystems.
//
// OCI layers are tarballs; this module converts between a vfs::Filesystem
// (representing one layer's tree, whiteouts included as plain files) and a
// byte blob in ustar format. Long paths use the GNU 'L' long-name extension.
#pragma once

#include <string>
#include <string_view>

#include "support/error.hpp"
#include "vfs/vfs.hpp"

namespace comt::tar {

/// Serializes every node of `tree` into a ustar archive. Entries are emitted
/// in sorted path order, so equal trees produce byte-identical archives
/// (deterministic layer digests). Timestamps are fixed at zero for the same
/// reason.
std::string pack(const vfs::Filesystem& tree);

/// Parses a ustar archive produced by pack() (or compatible) back into a
/// filesystem tree.
Result<vfs::Filesystem> unpack(std::string_view archive);

}  // namespace comt::tar
