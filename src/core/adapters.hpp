// System adapters (§4.2): the "optimization passes" of the coMtainer
// toolset. Each adapter transforms an independent copy of the process models
// for one target HPC system — rewriting compilation models (toolchain, ISA,
// LTO/PGO flags) and proposing package replacements. Adapters are plugins;
// the built-ins cover the setups the paper evaluates:
//   ToolchainAdapter  — cxxo: recompile with the system's native compiler
//   LibraryAdapter    — libo: swap generic packages for optimized variants
//   LtoAdapter        — enable link-time optimization across the graph
//   PgoAdapter        — request the automated profile-feedback rebuild loop
//   CrossIsaAdapter   — strip ISA-specific machine flags for cross-ISA moves
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/models.hpp"
#include "pkg/pkg.hpp"
#include "support/error.hpp"
#include "sysmodel/sysmodel.hpp"
#include "toolchain/artifact.hpp"

namespace comt::core {

/// Directory where Sysenv images install the system's native compilers
/// (kept separate from /usr/bin so rebuilds without the toolchain adapter
/// still use the generic toolchain — the ablation the motivation figure
/// needs).
inline constexpr std::string_view kSystemToolchainDir = "/opt/system/bin";

struct AdapterContext {
  const sysmodel::SystemProfile* system = nullptr;
  const pkg::Repository* system_repo = nullptr;
};

class SystemAdapter {
 public:
  virtual ~SystemAdapter() = default;

  virtual std::string_view name() const = 0;

  /// Rewrites compilation models in place.
  virtual Status adapt_graph(BuildGraph& graph, const AdapterContext& context) const {
    (void)graph;
    (void)context;
    return Status::success();
  }

  /// Adds package replacements: original package name -> system package
  /// name (often identical — the system repo carries optimized builds under
  /// the same names).
  virtual void adapt_packages(std::map<std::string, std::string>& replacements,
                              const ImageModel& image,
                              const AdapterContext& context) const {
    (void)replacements;
    (void)image;
    (void)context;
  }

  /// True if the rebuild should run the instrumented binary on the system
  /// and feed the profile back (the automated PGO loop of §4.4).
  virtual bool wants_profile_feedback() const { return false; }

  /// Post-link hook: transforms a freshly rebuilt executable/shared-library
  /// artifact in place (binary-level optimizations like BOLT that operate
  /// after compilation — the "further optimizations" §5.3 points at).
  virtual Status adapt_artifact(toolchain::LinkedImage& artifact,
                                const AdapterContext& context) const {
    (void)artifact;
    (void)context;
    return Status::success();
  }
};

class ToolchainAdapter final : public SystemAdapter {
 public:
  std::string_view name() const override { return "cxxo"; }
  Status adapt_graph(BuildGraph& graph, const AdapterContext& context) const override;
};

class LibraryAdapter final : public SystemAdapter {
 public:
  std::string_view name() const override { return "libo"; }
  void adapt_packages(std::map<std::string, std::string>& replacements,
                      const ImageModel& image,
                      const AdapterContext& context) const override;
};

class LtoAdapter final : public SystemAdapter {
 public:
  /// Full-scope LTO (the evaluation's configuration).
  LtoAdapter() = default;
  /// Scoped LTO: only nodes whose path contains one of `scope` participate.
  /// §4.4: because the whole build process is explicit graph data, coMtainer
  /// "can flexibly control its scope" — e.g. restrict the (expensive) link-
  /// time optimization to the hot subsystem of a large application.
  explicit LtoAdapter(std::vector<std::string> scope) : scope_(std::move(scope)) {}

  std::string_view name() const override { return "lto"; }
  Status adapt_graph(BuildGraph& graph, const AdapterContext& context) const override;

 private:
  bool in_scope(const GraphNode& node) const;
  std::vector<std::string> scope_;  ///< empty = whole graph
};

class PgoAdapter final : public SystemAdapter {
 public:
  std::string_view name() const override { return "pgo"; }
  bool wants_profile_feedback() const override { return true; }
};

class CrossIsaAdapter final : public SystemAdapter {
 public:
  std::string_view name() const override { return "cross-isa"; }
  Status adapt_graph(BuildGraph& graph, const AdapterContext& context) const override;
};

/// Post-link binary layout optimization (BOLT-like). Requires a training
/// profile (shares the PGO feedback run); reorders hot code in the final
/// binaries, recorded as CodegenInfo::layout_optimized.
class LayoutAdapter final : public SystemAdapter {
 public:
  std::string_view name() const override { return "layout"; }
  bool wants_profile_feedback() const override { return true; }
  Status adapt_artifact(toolchain::LinkedImage& artifact,
                        const AdapterContext& context) const override;
};

/// The adapter set producing the paper's "adapted" scheme (libo + cxxo).
std::vector<std::unique_ptr<SystemAdapter>> adapted_scheme();
/// The adapter set producing the paper's "optimized" scheme (+ LTO + PGO).
std::vector<std::unique_ptr<SystemAdapter>> optimized_scheme();

}  // namespace comt::core
