// Microbenchmark for the parallel rebuild engine: comtainer_rebuild of the
// lammps extended image at 1/2/4/8 scheduler threads, sequential baseline
// first, plus a warm-cache rerun showing the content-addressed compile
// cache replaying every job.
//
// Usage: parallel_rebuild [--smoke]
//   --smoke   one repetition at 1 and 2 threads only (CI-friendly).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "sched/compile_cache.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

struct World {
  oci::Layout layout;
  std::string extended_tag;
};

int build_world(const sysmodel::SystemProfile& system, World& world) {
  if (!workloads::install_user_images(world.layout, system.arch).ok() ||
      !workloads::install_system_images(world.layout, system).ok()) {
    std::fprintf(stderr, "installing evaluation images failed\n");
    return 1;
  }
  const workloads::AppSpec* app = workloads::find_app("lammps");
  if (app == nullptr) {
    std::fprintf(stderr, "lammps workload missing from corpus\n");
    return 1;
  }
  auto file = dockerfile::parse(workloads::dockerfile_text(*app, system.arch, true));
  if (!file.ok()) {
    std::fprintf(stderr, "dockerfile: %s\n", file.error().to_string().c_str());
    return 1;
  }
  buildexec::ImageBuilder builder(world.layout);
  builder.set_apt_source(&workloads::ubuntu_repo(system.arch));
  buildexec::BuildRecord record;
  auto built = builder.build(file.value(), workloads::build_context(*app), "lammps.dist",
                             "", &record);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.error().to_string().c_str());
    return 1;
  }
  auto stage = world.layout.find_image("lammps.dist.stage0");
  auto build_rootfs = world.layout.flatten(stage.value());
  auto extended =
      core::comtainer_build(world.layout, "lammps.dist", workloads::base_tag(system.arch),
                            record, build_rootfs.value());
  if (!extended.ok()) {
    std::fprintf(stderr, "comtainer_build: %s\n", extended.error().to_string().c_str());
    return 1;
  }
  world.extended_tag = "lammps.dist+coM";
  return 0;
}

core::RebuildOptions options_for(const sysmodel::SystemProfile& system,
                                 std::size_t threads, sched::CompileCache* cache) {
  core::RebuildOptions options;
  options.system = &system;
  options.system_repo = &workloads::system_repo(system);
  options.sysenv_tag = workloads::sysenv_tag(system);
  options.threads = threads;
  options.compile_cache = cache;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int repetitions = smoke ? 1 : 5;
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  World world;
  if (int rc = build_world(system, world); rc != 0) return rc;

  std::printf("parallel rebuild of %s on %s (%d repetition%s, best time)\n",
              world.extended_tag.c_str(), system.name.c_str(), repetitions,
              repetitions == 1 ? "" : "s");
  std::printf("host reports %u hardware thread%s — speedups above that (or on a "
              "1-core host, above 1) are not expected\n",
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() == 1 ? "" : "s");
  std::printf("%-8s %12s %10s %10s %8s %12s\n", "threads", "best-ms", "sched-ms",
              "speedup", "jobs", "image-digest");

  double baseline_ms = 0;
  std::string baseline_digest;
  for (std::size_t threads : thread_counts) {
    double best_ms = 0;
    double sched_ms = 0;
    std::size_t jobs = 0;
    std::string digest;
    for (int rep = 0; rep < repetitions; ++rep) {
      auto start = std::chrono::steady_clock::now();
      auto report =
          core::comtainer_rebuild(world.layout, world.extended_tag,
                                  options_for(system, threads, nullptr));
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (!report.ok()) {
        std::fprintf(stderr, "rebuild (threads=%zu): %s\n", threads,
                     report.error().to_string().c_str());
        return 1;
      }
      if (rep == 0 || ms < best_ms) {
        best_ms = ms;
        sched_ms = report.value().wall_ms;
      }
      jobs = report.value().jobs;
      digest = report.value().image.manifest_digest.value;
    }
    if (threads == thread_counts.front()) {
      baseline_ms = best_ms;
      baseline_digest = digest;
    }
    if (digest != baseline_digest) {
      std::fprintf(stderr, "DIGEST MISMATCH at %zu threads: parallel rebuild is not "
                           "bit-identical\n", threads);
      return 1;
    }
    std::printf("%-8zu %12.2f %10.2f %9.2fx %8zu %12.12s\n", threads, best_ms,
                sched_ms, baseline_ms / best_ms, jobs, digest.c_str());
  }

  // Warm-cache rerun: every compile job replays from the cache.
  sched::CompileCache cache;
  auto cold = core::comtainer_rebuild(world.layout, world.extended_tag,
                                      options_for(system, 2, &cache));
  auto warm_start = std::chrono::steady_clock::now();
  auto warm = core::comtainer_rebuild(world.layout, world.extended_tag,
                                      options_for(system, 2, &cache));
  double warm_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - warm_start)
                       .count();
  if (!cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "cached rebuild failed\n");
    return 1;
  }
  std::printf("\nwarm compile cache (2 threads): %.2f ms, %zu/%zu jobs replayed "
              "(hit rate %.0f%%)\n",
              warm_ms, warm.value().cache_hits, warm.value().jobs,
              warm.value().jobs == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(warm.value().cache_hits) /
                        static_cast<double>(warm.value().jobs));
  if (warm.value().cache_misses != 0) {
    std::fprintf(stderr, "expected a fully warm cache, saw %zu misses\n",
                 warm.value().cache_misses);
    return 1;
  }
  return 0;
}
