// The coMtainer back-end (§4.1/§4.2), system side:
//
//  comtainer_build    — user side: analyze the recorded build + images, add
//                       the cache layer, tag "<tag>+coM" (extended image).
//  comtainer_rebuild  — system side: in a Sysenv container, re-execute the
//                       (adapter-transformed) build graph with the system's
//                       toolchain and software stack; collect the results in
//                       a rebuild layer, tag "<tag>+coMre" (rebuilt image).
//                       When a PGO adapter is active, runs the automated
//                       instrument -> execute -> recompile feedback loop.
//                       Compile jobs run through the sched:: DAG scheduler:
//                       independent jobs execute concurrently when
//                       RebuildOptions::threads > 1, and an optional
//                       content-addressed compile cache replays unchanged
//                       jobs without running the toolchain.
//  comtainer_redirect — system side: in a fresh Rebase container, install
//                       (optimized) runtime packages, place the rebuilt or
//                       original application files at their original paths,
//                       and commit the final optimized image, "<tag>+opt".
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "buildexec/record.hpp"
#include "core/adapters.hpp"
#include "core/cache.hpp"
#include "core/models.hpp"
#include "durable/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "oci/oci.hpp"
#include "sched/compile_cache.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"

namespace comt::core {

/// Fault-injection site each compile job checks when RebuildOptions carries
/// an injector (spurious compile failures, the kind a flaky build node gives).
inline constexpr std::string_view kCompileFaultSite = "compile.job";

// Crash-injection sites a journaled rebuild passes through, in execution
// order. Arming one (FaultInjector::crash_at / crash_next) makes the rebuild
// die there by throwing support::CrashInjected — the in-process equivalent of
// SIGKILL at that instant. Together with the torn-write sites
// (durable::kJournalAppendSite, oci::kBlobPutSite) they cover every
// durability-relevant moment of a rebuild.
/// Entry of a compile job, before any work or journal replay.
inline constexpr std::string_view kCrashJobStart = "crash.rebuild.job_start";
/// Job outputs are committed to the rootfs but NOT yet journaled — the
/// classic window where a crash loses completed work (the resume re-runs it).
inline constexpr std::string_view kCrashJobCommitted = "crash.rebuild.job_committed";
/// The commit record hit the journal; a crash here must not re-run the job.
inline constexpr std::string_view kCrashJournalCommitted =
    "crash.rebuild.journal_committed";
/// All jobs done, right before the rebuilt image is assembled and tagged.
inline constexpr std::string_view kCrashFinish = "crash.rebuild.finish";
/// Every crash site above, for exhaustive crash-sweep tests.
inline constexpr std::string_view kRebuildCrashSites[] = {
    kCrashJobStart, kCrashJobCommitted, kCrashJournalCommitted, kCrashFinish};

/// User-side coMtainer-build. `dist_tag` is the application image built by
/// the two-stage Dockerfile, `base_tag` the dist stage's base image; the
/// build record and the build stage's final root filesystem come from the
/// hijacking build container. Returns the extended image ("<dist_tag>+coM").
Result<oci::Image> comtainer_build(oci::Layout& layout, std::string_view dist_tag,
                                   std::string_view base_tag,
                                   const buildexec::BuildRecord& record,
                                   const vfs::Filesystem& build_rootfs,
                                   const CacheOptions& cache_options = {});

struct RebuildOptions {
  /// Target system the rebuild adapts to. Required.
  const sysmodel::SystemProfile* system = nullptr;
  /// The system's package repository (optimized builds of the stack). Required.
  const pkg::Repository* system_repo = nullptr;
  /// Sysenv image tag in the layout: the system's build environment.
  std::string sysenv_tag;
  /// Adapters to apply, in order, to the build graph / packages / artifacts.
  std::vector<const SystemAdapter*> adapters;
  /// Input for the PGO feedback run (should mirror the deployment input).
  sysmodel::RunRequest profile_run;
  /// Worker threads for the compile scheduler. 1 (default) runs every job
  /// inline on the calling thread in topological order; >= 2 runs
  /// independent jobs concurrently. Both modes share one job code path and
  /// produce bit-identical rebuilt images.
  std::size_t threads = 1;
  /// Optional content-addressed compile cache. When set, each job first
  /// looks up (toolchain, ISA, cwd, argv) + input digests and replays the
  /// cached outputs on a hit; misses execute and populate the cache. Keep
  /// one cache alive across rebuilds to skip unchanged compilations — or
  /// attach it to a store::KvStore (CompileCache::attach) to keep it warm
  /// across processes. May be shared between concurrent rebuilds (it is
  /// thread-safe).
  sched::CompileCache* compile_cache = nullptr;
  /// Optional fault-injection hook: every compile job checks
  /// kCompileFaultSite before running, so callers with retry logic (the
  /// rebuild service) can be exercised against transient build failures.
  /// With a journal attached the same injector also drives the
  /// kCrash*/torn-write sites above.
  support::FaultInjector* fault_injector = nullptr;
  /// Optional write-ahead journal making the rebuild crash-safe and
  /// resumable. An empty journal gets a begin record (inputs digest, system,
  /// planned DAG) and one commit record per completed compile job; re-running
  /// with the same journal replays committed jobs from their recorded outputs
  /// instead of executing them and produces a bit-identical image. A journal
  /// whose begin record names different inputs is rejected
  /// (Errc::invalid_argument) — plans must not silently mix.
  durable::Journal* journal = nullptr;
  /// Caller-owned context stored in the journal's begin record (the rebuild
  /// service serializes the submit request here so recover() can resubmit).
  std::string journal_metadata;
  /// Optional tracer. When set, the rebuild emits a root "rebuild" span with
  /// the pipeline phases ("resolve", per-pass scheduling with one span per
  /// compile job, "layer-commit") nested under it, and RebuildReport carries
  /// the root span id and a per-phase profile.
  obs::Tracer* tracer = nullptr;
  /// Parent for the root span (e.g. the service's per-attempt span).
  obs::SpanId parent_span = obs::kNoSpan;
  /// Optional metrics: cache hits/misses, journal replay counts, scheduler
  /// and pool instrumentation land here ("rebuild.*", "sched.*").
  obs::MetricsRegistry* metrics = nullptr;
};

/// Diagnostics from a rebuild (how many nodes re-ran, profile feedback, …).
struct RebuildReport {
  /// The rebuilt image ("…+coMre").
  oci::Image image;
  /// Build-graph nodes whose job body ran, summed over PGO passes.
  std::size_t nodes_executed = 0;
  /// Files captured into the rebuild layer (/.coMtainer/rebuild/...).
  std::size_t files_rebuilt = 0;
  /// True when a PGO adapter drove the instrument→run→recompile loop.
  bool profile_feedback = false;
  /// Package substitutions the adapters proposed (original → system build).
  std::map<std::string, std::string> package_replacements;
  /// Compile jobs submitted to the scheduler, summed over PGO passes.
  std::size_t jobs = 0;
  /// Jobs replayed from the compile cache without running the toolchain.
  std::size_t cache_hits = 0;
  /// Jobs that executed the toolchain (includes all jobs when no cache is
  /// configured).
  std::size_t cache_misses = 0;
  /// Wall-clock milliseconds spent inside the compile scheduler, summed
  /// over PGO passes.
  double wall_ms = 0;
  /// Jobs replayed from journal commit records (crash-resume; never ran).
  std::size_t journal_replayed = 0;
  /// Jobs whose commit record was appended to the journal this run.
  std::size_t journal_committed = 0;
  /// Torn journal bytes dropped during replay (a crash mid-append).
  std::uint64_t journal_truncated_bytes = 0;
  /// True when an existing begin record matched — this run resumed a
  /// previously interrupted rebuild.
  bool resumed = false;
  /// True when the journal was folded into a canonical snapshot after the
  /// final pass fully committed (superseded PGO-pass records dropped).
  bool journal_compacted = false;
  /// What that compaction did (zero-initialized when it never ran).
  durable::CompactionReport journal_compaction;
  /// Root span id of this rebuild in RebuildOptions::tracer (kNoSpan when no
  /// tracer was attached).
  obs::SpanId root_span = obs::kNoSpan;
  /// Per-phase time breakdown aggregated from the rebuild's spans (empty
  /// when no tracer was attached).
  obs::ProfileReport profile;
};

Result<RebuildReport> comtainer_rebuild(oci::Layout& layout, std::string_view extended_tag,
                                        const RebuildOptions& options);

struct RedirectOptions {
  /// Target system (currently informational for redirect). Optional.
  const sysmodel::SystemProfile* system = nullptr;
  /// The system's package repository; source of replacement packages. Required.
  const pkg::Repository* system_repo = nullptr;
  /// Rebase image tag in the layout: the minimal runtime base.
  std::string rebase_tag;
  /// Extra package replacements applied even without a rebuild layer
  /// (redirect-only flows, e.g. the motivation figure's libo step).
  std::map<std::string, std::string> package_replacements;
  /// Worker threads for staging file content out of the source image.
  /// 1 (default) stages inline; >= 2 stages concurrently. Writes into the
  /// optimized image are always applied sequentially in model order, so the
  /// result is identical either way.
  std::size_t threads = 1;
  /// Optional tracer: emits a "redirect" span covering the whole operation.
  obs::Tracer* tracer = nullptr;
  /// Parent for the redirect span.
  obs::SpanId parent_span = obs::kNoSpan;
};

struct RedirectReport {
  /// The optimized image ("…+opt").
  oci::Image image;
  /// Runtime packages installed from the system repository (substitutions).
  std::size_t packages_installed = 0;
  /// Application files placed from the rebuild layer's content.
  std::size_t files_from_rebuild = 0;
  /// Application files carried over byte-for-byte from the original image.
  std::size_t files_from_original = 0;
  /// Wall-clock milliseconds spent in the staging scheduler.
  double wall_ms = 0;
};

Result<RedirectReport> comtainer_redirect(oci::Layout& layout, std::string_view source_tag,
                                          const RedirectOptions& options);

/// Strips the "+coM"/"+coMre"/"+opt" suffix from a tag.
std::string base_tag_of(std::string_view tag);

}  // namespace comt::core
