// SHA-256 (FIPS 180-4). Content digests for OCI blobs and build-graph node
// identities. Self-contained implementation — no external crypto dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace comt {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `data` into the running hash.
  void update(std::string_view data);
  void update(const void* data, std::size_t size);

  /// Finalizes and returns the 32-byte digest. The hasher must not be used
  /// after calling finish().
  std::array<std::uint8_t, 32> finish();

  /// One-shot convenience: lowercase-hex digest of `data`.
  static std::string hex_digest(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lowercase-hex encoding of arbitrary bytes.
std::string to_hex(const std::uint8_t* data, std::size_t size);

}  // namespace comt
