// OCI image-spec data model: digests, descriptors, image configs, manifests,
// image indexes, and an in-memory OCI layout (content-addressed blob store +
// index.json). This is the substrate the coMtainer cache/rebuild layers are
// injected into; extended images are ordinary OCI images with extra layers
// and extra manifests tagged "+coM"/"+coMre", exactly as in the paper.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "store/cas.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "vfs/vfs.hpp"

namespace comt::oci {

/// Torn-write injection site checked on every Layout::put_blob.
inline constexpr std::string_view kBlobPutSite = "oci.blob.put";

// Key layout of a Layout inside its backing KvStore — identical to the file
// names of the OCI image-layout directory format, so an unframed DiskStore
// over an attached layout *is* a spec-conformant layout directory.
inline constexpr std::string_view kBlobKeyPrefix = "blobs/";
inline constexpr std::string_view kIndexKey = "index.json";
inline constexpr std::string_view kOciLayoutKey = "oci-layout";
inline constexpr std::string_view kOciLayoutContent = R"({"imageLayoutVersion":"1.0.0"})";

// Media types (OCI image-spec v1).
inline constexpr std::string_view kMediaTypeManifest =
    "application/vnd.oci.image.manifest.v1+json";
inline constexpr std::string_view kMediaTypeConfig =
    "application/vnd.oci.image.config.v1+json";
inline constexpr std::string_view kMediaTypeLayer =
    "application/vnd.oci.image.layer.v1.tar";
inline constexpr std::string_view kMediaTypeIndex =
    "application/vnd.oci.image.index.v1+json";
/// Annotation key carrying an image tag inside an index (OCI standard).
inline constexpr std::string_view kRefNameAnnotation =
    "org.opencontainers.image.ref.name";

/// A content digest, "sha256:<64 hex>".
struct Digest {
  std::string value;

  static Digest of_blob(std::string_view blob);
  bool empty() const { return value.empty(); }
  bool operator==(const Digest&) const = default;
  auto operator<=>(const Digest&) const = default;
};

/// Reference to a blob: media type + digest + size.
struct Descriptor {
  std::string media_type;
  Digest digest;
  std::uint64_t size = 0;
  std::map<std::string, std::string> annotations;

  json::Value to_json() const;
  static Result<Descriptor> from_json(const json::Value& value);
};

/// Execution parameters recorded in an image config.
struct RuntimeConfig {
  std::vector<std::string> env;         ///< "KEY=value" entries
  std::vector<std::string> entrypoint;  ///< argv prefix
  std::vector<std::string> cmd;         ///< default argv suffix
  std::string working_dir = "/";
  std::map<std::string, std::string> labels;
};

/// OCI image config blob.
struct ImageConfig {
  std::string architecture = "amd64";
  std::string os = "linux";
  RuntimeConfig config;
  std::vector<Digest> diff_ids;         ///< uncompressed layer digests, in order
  std::vector<std::string> history;     ///< one created_by line per layer

  json::Value to_json() const;
  static Result<ImageConfig> from_json(const json::Value& value);
};

/// OCI image manifest blob.
struct Manifest {
  Descriptor config;
  std::vector<Descriptor> layers;
  std::map<std::string, std::string> annotations;

  json::Value to_json() const;
  static Result<Manifest> from_json(const json::Value& value);
};

/// A manifest + its config, resolved out of a layout.
struct Image {
  Digest manifest_digest;
  Manifest manifest;
  ImageConfig config;
};

/// An OCI layout: content-addressed blobs plus an index mapping ref-name
/// tags to manifests. Blob bytes live in a store::CasStore — a MemStore by
/// default (pure in-memory, the historical behaviour), or any backend handed
/// to attach() (a DiskStore makes this the on-disk oci-layout directory the
/// paper's workflow mounts into containers at /.coMtainer/io, maintained
/// live instead of via one-shot save_layout).
class Layout {
 public:
  Layout();

  /// Copies are always private in-memory snapshots: blob bytes and index are
  /// deep-copied into a fresh MemStore even when the source is attached to a
  /// disk backend. This is what lets every service job work on its own copy
  /// of a shared base layout.
  Layout(const Layout& other);
  Layout& operator=(const Layout& other);
  Layout(Layout&&) = default;
  Layout& operator=(Layout&&) = default;

  /// Re-homes the layout onto `backend` (e.g. a store::DiskStore over an OCI
  /// layout directory) and makes it durable: any index already present in
  /// the backend is loaded first, blobs this layout holds in memory are
  /// migrated in, and from here on every blob put and index mutation writes
  /// through ("blobs/sha256/<hex>", "index.json", "oci-layout" keys — the
  /// standard directory shape when the backend is an unframed DiskStore).
  Status attach(std::shared_ptr<store::KvStore> backend);

  /// Stores a blob and returns its descriptor. Re-putting a digest replaces
  /// the stored bytes, so writing the true content heals a previously torn
  /// blob under the same digest.
  Descriptor put_blob(std::string blob, std::string_view media_type);

  /// Attaches torn-write injection to put_blob: when an armed schedule fires
  /// the store keeps only a prefix of the bytes under the full content's
  /// digest — a partially flushed blob file — and CrashInjected is thrown.
  /// Pass nullptr to detach.
  void set_fault_injector(support::FaultInjector* faults) { faults_ = faults; }

  /// Overwrites the bytes stored under `digest` without re-hashing — the
  /// in-memory stand-in for on-disk bit rot under a content address. fsck
  /// tests corrupt blobs through this; no production path calls it. The
  /// blob must already exist.
  void set_blob_bytes(const Digest& digest, std::string bytes);

  Result<std::string> get_blob(const Digest& digest) const;
  bool has_blob(const Digest& digest) const { return blobs_.contains(digest.value); }
  std::size_t blob_count() const { return blobs_.count(); }

  /// Total bytes across all stored blobs.
  std::uint64_t total_blob_bytes() const;

  /// Digests of every stored blob (sorted; the map order).
  std::vector<Digest> blob_digests() const;

  /// Drops a blob from the store. Returns the bytes freed, 0 when absent or
  /// pinned. The caller owns referential integrity — a registry
  /// garbage-collecting unreferenced blobs, never a reachable one.
  std::uint64_t remove_blob(const Digest& digest);

  /// Pins `digest` against remove_blob and fsck-repair quarantine. Pins are
  /// refcounted: a blob stays protected until every pin is released. Live
  /// journaled rebuilds pin the blobs they still name so GC never reclaims
  /// state a resume would need.
  void pin_blob(const Digest& digest);

  /// Releases one pin on `digest` (no-op when unpinned).
  void unpin_blob(const Digest& digest);

  bool is_pinned(const Digest& digest) const { return pins_.count(digest) != 0; }

  /// Serializes `manifest`, stores it, and records `tag` in the index
  /// (replacing any previous manifest with the same tag).
  Result<Digest> add_manifest(const Manifest& manifest, std::string_view tag);

  /// All tags in the index, in insertion order.
  std::vector<std::string> tags() const;

  /// The index as (tag, manifest digest) pairs, in insertion order.
  std::vector<std::pair<std::string, Digest>> index_entries() const;

  /// Drops `tag` from the index (the manifest blob stays). Returns whether
  /// the tag existed. fsck repair uses this to cut dangling references.
  bool remove_tag(std::string_view tag);

  /// Records `tag` -> `manifest_digest` in the index without re-serializing a
  /// manifest (replacing any previous entry for the tag). The registry mirrors
  /// its reference map into its backing store's index with this, so fsck sees
  /// which blobs are reachable.
  void tag_manifest(std::string_view tag, const Digest& manifest_digest);

  Result<Image> find_image(std::string_view tag) const;
  Result<Image> load_image(const Digest& manifest_digest) const;

  /// Applies all layers of `image` in order over an empty root — the final
  /// container filesystem (the "POSIX file system simulator" of §4.5).
  Result<vfs::Filesystem> flatten(const Image& image) const;

  /// Packs `tree` as a tar layer blob and returns its layer descriptor.
  Descriptor put_layer(const vfs::Filesystem& tree);

  /// Reads a layer blob back into a tree.
  Result<vfs::Filesystem> read_layer(const Descriptor& layer) const;

  /// Derives a new image from `base` by appending one layer, and tags it.
  /// `created_by` goes into the config history. Returns the new image.
  Result<Image> append_layer(const Image& base, const vfs::Filesystem& layer_tree,
                             std::string_view created_by, std::string_view tag);

  /// Builds a brand-new single-or-multi-layer image from scratch.
  Result<Image> create_image(const ImageConfig& config,
                             const std::vector<vfs::Filesystem>& layers,
                             std::string_view tag);

  /// index.json document (for inspection / serialization round-trips).
  json::Value index_json() const;

  /// Verifies every blob's content against its digest key and every index
  /// entry against the blob store. First problem wins; fsck.hpp's
  /// oci::fsck() gives the full classified report.
  Status fsck() const;

 private:
  void copy_blobs_from(const Layout& other);
  json::Value index_json_impl(bool lenient) const;
  /// Writes "oci-layout" + "index.json" through the backend when attached.
  Status persist_index();

  store::CasStore blobs_;
  // tag -> manifest digest, in insertion order (index.json manifest list).
  std::vector<std::pair<std::string, Digest>> index_;
  std::map<Digest, int> pins_;  // digest -> pin refcount (GC exclusion set)
  support::FaultInjector* faults_ = nullptr;
  bool durable_index_ = false;  ///< attach() ran: index mutations write through
};

}  // namespace comt::oci
