#include "transfer/delta.hpp"

#include "obs/trace.hpp"
#include "support/sha256.hpp"

namespace comt::transfer {

Result<DeltaReport> push_delta(const std::string& blob,
                               const std::vector<std::string>& base_blob_digests,
                               ChunkStore& destination, const DeltaOptions& options) {
  COMT_TRY(ChunkManifest manifest, build_manifest(blob, destination.params()));

  obs::Span span = obs::maybe_span(destination.tracer(), "transfer.push", obs::kNoSpan,
                                   "transfer");
  span.annotate("blob", manifest.blob_digest);
  span.annotate("blob_bytes", manifest.total_size);

  DeltaReport report;
  report.blob_digest = manifest.blob_digest;
  report.blob_bytes = manifest.total_size;
  report.chunks_total = manifest.chunks.size();

  // The base manifests only decide whether this counts as a delta at all —
  // the per-chunk probes below are what actually skip bytes, so a base that
  // was never pushed or whose chunks were GC'd degrades to a fuller push.
  bool any_base = false;
  for (const std::string& base : base_blob_digests) {
    if (destination.contains_blob(base)) any_base = true;
  }
  report.full_push = !any_base;

  std::vector<CodecId> advertised = destination.advertised_codecs();
  if (advertised.empty()) advertised = destination.codecs();
  COMT_TRY(report.codec, negotiate(options.preferred, advertised));
  span.annotate("codec", codec_name(report.codec));

  for (const ChunkRef& chunk : manifest.chunks) {
    COMT_TRY(std::uint64_t wire,
             destination.put_chunk(chunk.digest,
                                   std::string_view(blob).substr(chunk.offset, chunk.size),
                                   report.codec));
    if (wire == 0) {
      ++report.chunks_reused;
      report.bytes_deduped += chunk.size;
    } else {
      ++report.chunks_moved;
      report.bytes_moved += wire;
    }
  }
  // The manifest itself rides the wire too; a delta that moves zero chunks
  // still costs its manifest.
  report.bytes_moved += manifest.serialize().size();
  COMT_TRY_STATUS(destination.put_manifest(manifest));
  destination.note_transfer_moved(report.bytes_moved);

  span.annotate("chunks_moved", static_cast<std::uint64_t>(report.chunks_moved));
  span.annotate("chunks_reused", static_cast<std::uint64_t>(report.chunks_reused));
  span.annotate("bytes_moved", report.bytes_moved);
  span.annotate("bytes_deduped", report.bytes_deduped);
  span.annotate("full_push", report.full_push ? "true" : "false");
  return report;
}

Result<DeltaReport> pull_delta(const ChunkStore& source, std::string_view blob_digest,
                               ChunkStore& local, std::string* blob_out,
                               const DeltaOptions& options) {
  COMT_TRY(ChunkManifest manifest, source.manifest(blob_digest));

  obs::Span span = obs::maybe_span(source.tracer(), "transfer.pull", obs::kNoSpan,
                                   "transfer");
  span.annotate("blob", manifest.blob_digest);
  span.annotate("blob_bytes", manifest.total_size);

  DeltaReport report;
  report.blob_digest = manifest.blob_digest;
  report.blob_bytes = manifest.total_size;
  report.chunks_total = manifest.chunks.size();

  std::vector<CodecId> advertised = local.advertised_codecs();
  if (advertised.empty()) advertised = local.codecs();
  COMT_TRY(report.codec, negotiate(options.preferred, advertised));
  span.annotate("codec", codec_name(report.codec));

  std::string blob;
  blob.reserve(manifest.total_size);
  for (const ChunkRef& chunk : manifest.chunks) {
    if (chunk.offset != blob.size()) {
      return make_error(Errc::corrupt,
                        "delta pull: manifest offsets inconsistent for " +
                            manifest.blob_digest);
    }
    std::string raw;
    if (local.contains_chunk(chunk.digest)) {
      // Already held locally — reuse, nothing crosses the wire. A locally
      // corrupted copy surfaces here and fails the pull rather than poisoning
      // the reassembly.
      COMT_TRY(raw, local.get_chunk(chunk.digest));
      ++report.chunks_reused;
      report.bytes_deduped += chunk.size;
    } else {
      std::uint64_t wire = 0;
      COMT_TRY(raw, source.get_chunk(chunk.digest, &wire));
      ++report.chunks_moved;
      report.bytes_moved += wire;
      COMT_TRY(std::uint64_t wrote, local.put_chunk(chunk.digest, raw, report.codec));
      (void)wrote;
    }
    blob.append(raw);
  }
  report.full_push = report.chunks_reused == 0;
  report.bytes_moved += manifest.serialize().size();

  // End-to-end proof before anything is trusted: the reassembled bytes must
  // hash to the digest we asked for.
  if ("sha256:" + Sha256::hex_digest(blob) != manifest.blob_digest ||
      blob.size() != manifest.total_size) {
    return make_error(Errc::corrupt,
                      "delta pull: reassembled blob does not match " +
                          manifest.blob_digest);
  }
  COMT_TRY_STATUS(local.put_manifest(manifest));
  local.note_transfer_moved(report.bytes_moved);
  if (blob_out != nullptr) *blob_out = std::move(blob);

  span.annotate("chunks_moved", static_cast<std::uint64_t>(report.chunks_moved));
  span.annotate("chunks_reused", static_cast<std::uint64_t>(report.chunks_reused));
  span.annotate("bytes_moved", report.bytes_moved);
  span.annotate("bytes_deduped", report.bytes_deduped);
  return report;
}

}  // namespace comt::transfer
