// An in-memory OCI image registry: the "repository" box in the paper's
// workflow (Fig. 1/4). Push copies an image (manifest, config, layers) from a
// local layout into the registry store; pull copies it back out. Blobs are
// content-addressed, so repeated pushes of shared base layers deduplicate.
//
// The registry is shared by every tenant of the rebuild service, so all
// operations are thread-safe: mutations (push, pull's transfer accounting,
// remove) run under the writer lock, queries under the reader lock. An
// optional support::FaultInjector hook lets tests and benchmarks make
// push/pull fail transiently like a real network registry would.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "store/store.hpp"
#include "obs/trace.hpp"
#include "oci/fsck.hpp"
#include "oci/oci.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "transfer/chunkstore.hpp"
#include "transfer/delta.hpp"

namespace comt::registry {

/// Fault-injection sites checked when an injector is attached.
inline constexpr std::string_view kPullFaultSite = "registry.pull";
inline constexpr std::string_view kPushFaultSite = "registry.push";

/// Registry statistics for reporting distribution overhead (Table 3).
struct Stats {
  std::size_t repositories = 0;
  std::size_t blobs = 0;
  std::uint64_t stored_bytes = 0;
  std::uint64_t pushed_bytes = 0;  ///< bytes actually transferred by pushes
  std::uint64_t pulled_bytes = 0;  ///< bytes actually transferred by pulls
  std::uint64_t reclaimed_bytes = 0;  ///< bytes freed by remove()'s garbage collection
  std::size_t removed_blobs = 0;      ///< blobs freed by remove()'s garbage collection
  // Chunk-dedup accounting, all zero until enable_chunk_dedup(). Wire bytes
  // are framed (possibly compressed) chunk bytes; deduped bytes are the raw
  // bytes reused chunks covered.
  std::uint64_t chunk_bytes_moved = 0;
  std::uint64_t chunk_bytes_deduped = 0;
  std::size_t chunks_moved = 0;
  std::size_t chunks_reused = 0;
};

/// What one image-level delta transfer did: the per-blob DeltaReports summed,
/// plus whole-blob dedup (blobs the other side already held in full).
struct ImageDeltaReport {
  std::string reference;            ///< "name:tag"
  std::size_t blobs_total = 0;
  std::size_t blobs_moved = 0;      ///< blobs that needed any chunk traffic
  std::size_t blobs_reused = 0;     ///< blobs fully present at the other side
  std::uint64_t image_bytes = 0;    ///< logical bytes of every blob in the image
  std::uint64_t bytes_moved = 0;    ///< wire bytes (framed chunks + manifests)
  std::uint64_t bytes_deduped = 0;  ///< raw bytes covered by reuse
  std::size_t chunks_moved = 0;
  std::size_t chunks_reused = 0;
  bool full_push = false;           ///< no named base was present at the destination

  double moved_fraction() const {
    return image_bytes == 0 ? 0.0
                            : static_cast<double>(bytes_moved) /
                                  static_cast<double>(image_bytes);
  }
};

class Registry {
 public:
  /// Re-homes the backing layout onto `backend` and rebuilds the reference
  /// map from the index it carries, making the registry durable: every pushed
  /// blob and reference writes through from here on. Blobs the registry
  /// already holds migrate in. Call before sharing the registry.
  Status attach(std::shared_ptr<store::KvStore> backend);

  /// Opens the registry directly on an OCI layout directory (an unframed
  /// store::DiskStore over `directory`): existing images become servable,
  /// new pushes land as spec-shaped files. Created lazily if missing.
  Status open_directory(const std::string& directory);

  /// Pushes the image tagged `local_tag` in `source` under "name:tag".
  /// Only blobs the registry does not already hold are "transferred".
  Status push(const oci::Layout& source, std::string_view local_tag,
              std::string_view name, std::string_view tag);

  /// Pulls "name:tag" into `destination`, tagging it `local_tag`.
  Status pull(std::string_view name, std::string_view tag, oci::Layout& destination,
              std::string_view local_tag) const;

  /// Turns on chunk-level dedup: every push additionally lands the image's
  /// blobs in `chunks` (content-defined chunks + manifests), and pushed_bytes
  /// counts chunk wire traffic instead of whole blobs for new content. Blobs
  /// pushed before dedup was enabled are chunked lazily the next time a push
  /// touches them, so pre-existing images become usable delta bases. The
  /// chunk store's backend is the distribution substrate — hand it a
  /// RemoteStore and chunk movement rides that store's retry/breaker
  /// machinery. Wire up before sharing the registry.
  void enable_chunk_dedup(std::shared_ptr<transfer::ChunkStore> chunks);
  const std::shared_ptr<transfer::ChunkStore>& chunk_store() const { return chunks_; }

  /// Delta-pushes the image tagged `local_tag` in `source` under "name:tag",
  /// moving only the chunks the chunk store is missing. `base_references`
  /// names images expected to already be here (the optimized image's generic
  /// parent); a missing or partially GC'd base degrades to a fuller push, so
  /// the call never fails for that reason. Requires enable_chunk_dedup.
  Result<ImageDeltaReport> push_delta(const oci::Layout& source, std::string_view local_tag,
                                      std::string_view name, std::string_view tag,
                                      const std::vector<std::string>& base_references = {});

  /// Delta-pulls "name:tag" into `destination`, fetching only the chunks
  /// `local_chunks` does not already hold and reassembling with whole-blob
  /// digest verification. `local_chunks`, when non-null, is the puller's own
  /// chunk cache (hydrated by previous pulls); null degrades to whole-blob
  /// transfers for blobs `destination` is missing. Requires enable_chunk_dedup.
  Result<ImageDeltaReport> pull_delta(std::string_view name, std::string_view tag,
                                      oci::Layout& destination, std::string_view local_tag,
                                      transfer::ChunkStore* local_chunks = nullptr) const;

  bool has(std::string_view name, std::string_view tag) const;

  /// Manifest digest of "name:tag" — the stable identity of the pushed image
  /// (the rebuild service coalesces concurrent requests on it).
  Result<oci::Digest> resolve(std::string_view name, std::string_view tag) const;

  /// Every "name:tag" reference, sorted.
  std::vector<std::string> list() const;

  /// Drops "name:tag" and garbage-collects every blob no remaining reference
  /// reaches (manifests, configs, layers). Shared blobs survive as long as
  /// any reference still uses them. Reclaimed bytes/blobs are counted in
  /// Stats.
  Status remove(std::string_view name, std::string_view tag);

  /// Garbage-collects every blob no reference (and no pin) reaches, without
  /// dropping any reference. Reclaimed bytes/blobs are counted in Stats.
  Status gc();

  /// Pins every blob "name:tag" reaches (manifest, config, layers) against
  /// remove()/gc() reclamation. Pins are refcounted per blob. A journaled
  /// rebuild pins its source image so a concurrent remove of the tag cannot
  /// sweep blobs a crash-resume would still need.
  Status pin(std::string_view name, std::string_view tag);

  /// Releases the pins taken by a matching pin() call.
  Status unpin(std::string_view name, std::string_view tag);

  /// Raw blob access for fsck repair: the registry acts as the origin that
  /// re-supplies true bytes for a damaged local layout.
  Result<std::string> fetch_blob(const oci::Digest& digest) const;

  /// Integrity-checks the backing store. With `repair`, heals what it can
  /// (refetching from `origin` when provided) and prunes references whose
  /// manifests are unrecoverable.
  oci::FsckReport fsck(bool repair = false, const oci::BlobFetcher& origin = {});

  Stats stats() const;

  /// Attaches a fault injector: push/pull check kPushFaultSite/kPullFaultSite
  /// before touching the store, and the backing store checks
  /// oci::kBlobPutSite on every blob write (torn-push injection). Pass
  /// nullptr to detach. Not synchronized with concurrent operations — wire it
  /// up before sharing the registry.
  void set_fault_injector(support::FaultInjector* faults) {
    faults_ = faults;
    store_.set_fault_injector(faults);
  }

  /// Attaches observability: push/pull/gc/fsck each emit a root-level span
  /// ("registry.<op>") and bump "registry.<op>s" counters; transferred bytes
  /// go to "registry.pulled_bytes"/"registry.pushed_bytes". Either pointer
  /// may be nullptr. Not synchronized with concurrent operations — wire it up
  /// before sharing the registry.
  void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

 private:
  Status sweep_locked();
  Status ingest_blob_locked(const oci::Layout& source, const oci::Descriptor& blob,
                            const std::vector<std::string>& base_digests,
                            ImageDeltaReport* report);

  mutable std::shared_mutex mutex_;
  oci::Layout store_;
  std::map<std::string, oci::Digest> references_;  // "name:tag" -> manifest
  std::shared_ptr<transfer::ChunkStore> chunks_;
  mutable Stats transfer_;
  support::FaultInjector* faults_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* pulls_ = nullptr;
  obs::Counter* pushes_ = nullptr;
  obs::Counter* gcs_ = nullptr;
  obs::Counter* fscks_ = nullptr;
  obs::Counter* pulled_bytes_ = nullptr;
  obs::Counter* pushed_bytes_ = nullptr;
};

}  // namespace comt::registry
