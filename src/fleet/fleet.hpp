// The rebuild fleet: N RebuildService replicas over one shared compile
// substrate, coordinated by the store-backed lease protocol (lease.hpp).
//
// This is the deployment step the single service stops short of: a site runs
// several rebuild daemons for capacity and availability, but they must
// behave like one logical service — a given (image, system) compiles once
// fleet-wide, every replica serves the result, and a replica dying mid-build
// must not strand the work. Fleet wires that out of existing parts:
//
//  - one shared KvStore (options.store; a MemStore by default, a
//    RemoteStore/ShardedStore stack in benches and site deployments) holds
//    the compile cache write-through, every write-ahead journal, and the
//    fleet/{lease,done}/ coordination keys;
//  - one shared durable::JournalStore over that store, so a takeover replica
//    opens the crashed holder's journal — same key, same metadata — and
//    replays its committed compile jobs instead of redoing them;
//  - per-replica LeaseCoordinators (same store, distinct replica ids) plug
//    into ServiceOptions::coordinator, extending each service's in-process
//    coalescing into global dedup: concurrent identical submissions across
//    replicas produce exactly one build, the rest reuse or wait;
//  - per-replica compile caches attach to the shared store, so a local miss
//    falls back to entries other replicas already compiled
//    (CacheStats::remote_hits — the cross-replica warm-cache path).
//
// All replicas share one metrics registry (fleet.* + service.* + store.*),
// so FleetStats is a fleet-wide view by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "durable/journal.hpp"
#include "fleet/lease.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "registry/registry.hpp"
#include "service/service.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "transfer/chunkstore.hpp"

namespace comt::fleet {

struct FleetOptions {
  /// Service replicas to run. Each gets its own worker pools and compile
  /// cache; everything durable is shared.
  std::size_t replicas = 2;
  /// Per-replica service knobs (see ServiceOptions for semantics).
  std::size_t queue_capacity = 64;
  std::size_t workers_per_system = 1;
  std::size_t rebuild_threads = 1;
  int max_attempts = 3;
  bool sleep_on_backoff = true;
  /// Tenant admission policy, applied to every replica. Note that quotas are
  /// enforced per replica: behind the round-robin balancer a tenant's
  /// effective fleet-wide rate is replicas × its per-replica rate, so divide
  /// accordingly when configuring.
  service::TenantPolicy default_tenant;
  std::map<std::string, service::TenantPolicy> tenants;
  /// Per-system worker-pool autoscaling, applied to every replica's pools.
  service::AutoscaleOptions autoscale;
  /// Lease protocol timing (see LeaseCoordinator::Options).
  std::chrono::milliseconds lease_ttl{2000};
  std::chrono::milliseconds lease_poll{1};
  std::chrono::milliseconds lease_max_wait{30000};
  /// The shared substrate. A private MemStore when null. Benches hand in a
  /// RemoteStore to put the coordination traffic behind simulated latency.
  std::shared_ptr<store::KvStore> store;
  /// Chunk-dedup image distribution: the fleet builds a transfer::ChunkStore
  /// over the shared store and enables chunk dedup on the hub registry, so
  /// every rebuilt image's push moves only the chunks the substrate does not
  /// already hold (the optimized child dedups against its generic parent).
  /// When the shared store is a RemoteStore, chunk movement rides its
  /// retry/breaker machinery.
  bool chunked_artifacts = false;
  transfer::ChunkerParams chunk_params;
  support::FaultInjector* faults = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Shared across all replicas; a private registry when null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Handle to a submission: which replica took it, and its ticket there.
struct FleetTicket {
  std::size_t replica = 0;
  service::Ticket ticket = 0;
};

/// Fleet-wide counters, read from the shared metrics registry.
struct FleetStats {
  std::uint64_t submitted = 0;      ///< tickets across all replicas
  std::uint64_t coalesced = 0;      ///< in-process coalesces (per replica)
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t throttled = 0;      ///< shed by per-tenant rate quotas
  std::uint64_t scale_ups = 0;      ///< autoscaler grow events, fleet-wide
  std::uint64_t scale_downs = 0;
  std::uint64_t crashed = 0;
  std::uint64_t fleet_reused = 0;   ///< jobs served from another replica's result
  std::uint64_t coordinator_errors = 0;
  std::uint64_t leases_acquired = 0;  ///< build grants — fleet-wide distinct builds
  std::uint64_t lease_steals = 0;     ///< takeovers from expired holders
  std::uint64_t lease_waits = 0;      ///< acquires that had to poll
  double lease_wait_ms = 0;           ///< summed wait time across acquires
  std::uint64_t cache_remote_hits = 0;  ///< compile cache hits via the shared store
  // Chunk-dedup transfer counters (zero unless FleetOptions::chunked_artifacts).
  std::uint64_t transfer_chunks_hit = 0;
  std::uint64_t transfer_chunks_miss = 0;
  std::uint64_t transfer_bytes_moved = 0;    ///< wire bytes delta pushes moved
  std::uint64_t transfer_bytes_deduped = 0;  ///< raw bytes reused chunks covered
};

class Fleet {
 public:
  Fleet(registry::Registry& hub, FleetOptions options = {});

  /// Drains every replica.
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Registers the tenant target on every replica (each replica gets its own
  /// copy, as separate daemons would). Register before submitting.
  Status add_system(const std::string& fingerprint, const service::TargetSystem& target);

  /// Round-robin submission across replicas — the load balancer in front of
  /// a real fleet.
  Result<FleetTicket> submit(const service::SubmitRequest& request);

  /// Submission pinned to one replica (tests aim crashes this way).
  Result<FleetTicket> submit_to(std::size_t replica, const service::SubmitRequest& request);

  Result<service::TicketStatus> status(const FleetTicket& ticket) const;
  Result<service::TicketStatus> wait(const FleetTicket& ticket) const;

  void pause();
  void resume();
  void drain();

  /// Runs crash recovery on `replica`: fsck + resubmit of every surviving
  /// journal in the shared JournalStore. After a holder crashed, run this on
  /// any live replica — its acquire() waits out the dead holder's lease TTL,
  /// steals the lease, and finishes the build from the journal.
  Result<service::RecoveryReport> recover(std::size_t replica);

  std::size_t replica_count() const { return replicas_.size(); }
  service::RebuildService& replica(std::size_t index) { return *replicas_[index]; }
  LeaseCoordinator& coordinator(std::size_t index) { return *coordinators_[index]; }
  const std::shared_ptr<store::KvStore>& store() const { return store_; }
  /// The fleet's chunk store when chunked_artifacts is on; null otherwise.
  const std::shared_ptr<transfer::ChunkStore>& chunk_store() const { return chunks_; }
  durable::JournalStore& journals() { return *journals_; }
  obs::MetricsRegistry& metrics() { return *metrics_; }

  FleetStats stats() const;

 private:
  registry::Registry& hub_;
  FleetOptions options_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::shared_ptr<store::KvStore> store_;
  std::shared_ptr<transfer::ChunkStore> chunks_;
  std::unique_ptr<durable::JournalStore> journals_;
  std::vector<std::unique_ptr<LeaseCoordinator>> coordinators_;
  /// Destroyed first (reverse member order): each service drains while its
  /// coordinator and the shared journals are still alive.
  std::vector<std::unique_ptr<service::RebuildService>> replicas_;
  std::atomic<std::size_t> next_replica_{0};
};

}  // namespace comt::fleet
