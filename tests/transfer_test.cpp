#include <gtest/gtest.h>

#include <random>
#include <set>

#include "registry/registry.hpp"
#include "store/remote.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"
#include "support/sha256.hpp"
#include "transfer/chunker.hpp"
#include "transfer/chunkstore.hpp"
#include "transfer/codec.hpp"
#include "transfer/delta.hpp"

namespace comt::transfer {
namespace {

/// Deterministic pseudo-random payload — repetitive enough to compress, varied
/// enough to produce many distinct chunks. Includes NUL and high bytes so the
/// wire path is exercised on binary data, not just text.
std::string payload(std::size_t size, std::uint32_t seed) {
  std::mt19937 rng(seed);
  static constexpr std::string_view kWords[] = {
      "usr/lib/", "libm.so", "openmpi", "x86-64-v3", "\x7f""ELF",
      "config ",  "0000644 ", "mca_btl"};
  std::string out;
  out.reserve(size + 16);
  while (out.size() < size) {
    const std::uint32_t pick = rng();
    if (pick % 16 == 0) {
      out.append(4, '\0');
      out.push_back(static_cast<char>(pick >> 24));
    } else {
      out.append(kWords[pick % std::size(kWords)]);
    }
  }
  out.resize(size);
  return out;
}

std::set<std::string> chunk_digests(const ChunkManifest& manifest) {
  std::set<std::string> out;
  for (const ChunkRef& chunk : manifest.chunks) out.insert(chunk.digest);
  return out;
}

// ---------------------------------------------------------------------------
// Chunker.

TEST(TransferChunkerTest, BoundariesAreDeterministicAndCoverTheBlob) {
  const std::string blob = payload(96 * 1024, 7);
  ChunkerParams params;
  auto a = chunk_boundaries(blob, params);
  auto b = chunk_boundaries(blob, params);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  std::uint64_t pos = 0;
  for (const auto& [offset, size] : a) {
    EXPECT_EQ(offset, pos);
    EXPECT_GT(size, 0u);
    EXPECT_LE(size, params.max_size);
    pos += size;
  }
  EXPECT_EQ(pos, blob.size());
  // Every chunk except the tail respects the minimum.
  for (std::size_t i = 0; i + 1 < a.size(); ++i) EXPECT_GE(a[i].second, params.min_size);
}

TEST(TransferChunkerTest, ManifestRoundTripsAndDetectsDamage) {
  const std::string blob = payload(32 * 1024, 3);
  auto manifest = build_manifest(blob, ChunkerParams{});
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().blob_digest, "sha256:" + Sha256::hex_digest(blob));
  EXPECT_EQ(manifest.value().total_size, blob.size());

  std::string bytes = manifest.value().serialize();
  auto parsed = ChunkManifest::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), manifest.value());

  // A flipped byte and a truncation are both corrupt, never misparsed.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x20;
  EXPECT_EQ(ChunkManifest::parse(flipped).error().code, Errc::corrupt);
  EXPECT_EQ(ChunkManifest::parse(std::string_view(bytes).substr(0, bytes.size() - 3))
                .error()
                .code,
            Errc::corrupt);
}

TEST(TransferChunkerTest, OneByteInsertDirtiesOhOneChunks) {
  const std::string blob = payload(128 * 1024, 11);
  ChunkerParams params;
  auto before = build_manifest(blob, params);
  ASSERT_TRUE(before.ok());

  // Insert one byte a third of the way in: the boundary-shift resistance
  // property says every chunk past the edit's neighbourhood re-synchronizes.
  std::string edited = blob;
  edited.insert(blob.size() / 3, 1, '!');
  auto after = build_manifest(edited, params);
  ASSERT_TRUE(after.ok());

  std::set<std::string> old_digests = chunk_digests(before.value());
  std::size_t changed = 0;
  for (const ChunkRef& chunk : after.value().chunks) {
    if (old_digests.count(chunk.digest) == 0) ++changed;
  }
  // O(1): the chunk the byte landed in, plus at most a couple of neighbours —
  // independent of how many chunks the blob has.
  EXPECT_GE(after.value().chunks.size(), 10u);
  EXPECT_LE(changed, 4u);
}

TEST(TransferChunkerTest, RejectsInvalidParams) {
  ChunkerParams bad;
  bad.avg_size = 3000;  // not a power of two
  EXPECT_EQ(bad.validate().error().code, Errc::invalid_argument);
  bad = ChunkerParams{};
  bad.min_size = bad.avg_size + 1;
  EXPECT_EQ(bad.validate().error().code, Errc::invalid_argument);
  EXPECT_FALSE(build_manifest("x", bad).ok());
}

TEST(TransferChunkerTest, EmptyBlobHasNoChunks) {
  auto manifest = build_manifest("", ChunkerParams{});
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(manifest.value().chunks.empty());
  EXPECT_EQ(manifest.value().total_size, 0u);
}

// ---------------------------------------------------------------------------
// Codec.

TEST(TransferCodecTest, LzRoundTripsAndShrinksRepetitiveData) {
  const Codec* lz = find_codec(CodecId::lz);
  ASSERT_NE(lz, nullptr);
  const std::string raw = payload(16 * 1024, 23);
  std::string encoded = lz->encode(raw);
  EXPECT_LT(encoded.size(), raw.size());
  auto decoded = lz->decode(encoded, raw.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), raw);
}

TEST(TransferCodecTest, FrameVerifiesChecksumAndRejectsDamage) {
  const std::string raw = payload(4096, 5);
  std::string framed = frame_chunk(CodecId::lz, raw);
  auto back = unframe_chunk("t", framed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);

  std::string torn = framed.substr(0, framed.size() / 2);
  EXPECT_EQ(unframe_chunk("t", torn).error().code, Errc::corrupt);

  std::string flipped = framed;
  flipped[framed.size() - 1] ^= 0x01;
  EXPECT_EQ(unframe_chunk("t", flipped).error().code, Errc::corrupt);

  std::string unknown = framed;
  unknown[0] = 0x7E;  // codec id from the future
  EXPECT_EQ(unframe_chunk("t", unknown).error().code, Errc::unsupported);
}

TEST(TransferCodecTest, IncompressibleDataFallsBackToIdentity) {
  std::mt19937_64 rng(99);
  std::string raw(2048, '\0');
  for (char& c : raw) c = static_cast<char>(rng());
  std::string framed = frame_chunk(CodecId::lz, raw);
  EXPECT_EQ(static_cast<CodecId>(framed[0]), CodecId::identity);
  EXPECT_EQ(unframe_chunk("r", framed).value(), raw);
}

TEST(TransferCodecTest, NegotiationPicksFirstCommonAndFailsClosed) {
  EXPECT_EQ(negotiate({CodecId::lz, CodecId::identity}, {CodecId::identity, CodecId::lz})
                .value(),
            CodecId::lz);
  EXPECT_EQ(negotiate({CodecId::lz, CodecId::identity}, {CodecId::identity}).value(),
            CodecId::identity);
  EXPECT_EQ(negotiate({CodecId::lz}, {}).error().code, Errc::unsupported);

  // Advertisement round-trip; a damaged advertisement parses as empty.
  std::string ad = serialize_codec_list({CodecId::lz, CodecId::identity});
  EXPECT_EQ(parse_codec_list(ad), (std::vector<CodecId>{CodecId::lz, CodecId::identity}));
  ad[1] ^= 0x40;
  EXPECT_TRUE(parse_codec_list(ad).empty());
}

// ---------------------------------------------------------------------------
// ChunkStore.

TEST(TransferChunkStoreTest, PutGetRoundTripAndIdempotence) {
  ChunkStore store(std::make_shared<store::MemStore>());
  const std::string blob = payload(64 * 1024, 31);
  auto manifest = store.put_blob(blob);
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(store.contains_blob(manifest.value().blob_digest));
  EXPECT_EQ(store.get_blob(manifest.value().blob_digest).value(), blob);

  // Re-putting the same blob dedups everything and references nothing twice.
  const std::uint64_t stored = store.stored_chunk_bytes();
  const std::uint64_t misses = store.chunks_miss();
  ASSERT_TRUE(store.put_blob(blob).ok());
  EXPECT_EQ(store.stored_chunk_bytes(), stored);
  EXPECT_EQ(store.chunks_miss(), misses);
  EXPECT_GT(store.chunks_hit(), 0u);
}

TEST(TransferChunkStoreTest, SharedContentSharesChunks) {
  ChunkStore store(std::make_shared<store::MemStore>());
  const std::string base = payload(96 * 1024, 41);
  std::string child = base;
  child.replace(child.size() / 2, 64, std::string(64, '@'));  // one small edit

  ASSERT_TRUE(store.put_blob(base).ok());
  const std::uint64_t stored_after_base = store.stored_chunk_bytes();
  ASSERT_TRUE(store.put_blob(child).ok());
  const std::uint64_t child_cost = store.stored_chunk_bytes() - stored_after_base;
  // The child stores only the chunks around the edit, a small fraction of it.
  EXPECT_LT(child_cost, base.size() / 4);
  EXPECT_GT(store.dedup_ratio(), 1.5);
}

TEST(TransferChunkStoreTest, GcRefcountsAcrossSharedChunksAndPins) {
  ChunkStore store(std::make_shared<store::MemStore>());
  const std::string base = payload(64 * 1024, 51);
  std::string child = base;
  child.replace(0, 32, std::string(32, '#'));

  auto base_manifest = store.put_blob(base);
  auto child_manifest = store.put_blob(child);
  ASSERT_TRUE(base_manifest.ok());
  ASSERT_TRUE(child_manifest.ok());

  // Erasing the base keeps every chunk the child still references.
  auto freed = store.erase_blob(base_manifest.value().blob_digest);
  ASSERT_TRUE(freed.ok());
  EXPECT_FALSE(store.contains_blob(base_manifest.value().blob_digest));
  EXPECT_EQ(store.get_blob(child_manifest.value().blob_digest).value(), child);

  // A pinned blob survives erase entirely (journaled rebuilds hold pins).
  store.pin_blob(child_manifest.value().blob_digest);
  EXPECT_EQ(store.erase_blob(child_manifest.value().blob_digest).value(), 0u);
  EXPECT_TRUE(store.contains_blob(child_manifest.value().blob_digest));
  store.unpin_blob(child_manifest.value().blob_digest);
  EXPECT_GT(store.erase_blob(child_manifest.value().blob_digest).value(), 0u);
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.stored_chunk_bytes(), 0u);
}

TEST(TransferChunkStoreTest, ReopenedStoreHydratesRefcountsFromManifests) {
  auto backend = std::make_shared<store::MemStore>();
  std::string base_digest, child_digest;
  const std::string base = payload(48 * 1024, 61);
  std::string child = base;
  child.append("extra tail data");
  {
    ChunkStore store(backend);
    base_digest = store.put_blob(base).value().blob_digest;
    child_digest = store.put_blob(child).value().blob_digest;
  }
  // A fresh store over the same backend must GC exactly like the original.
  ChunkStore reopened(backend);
  EXPECT_EQ(reopened.blob_count(), 2u);
  ASSERT_TRUE(reopened.erase_blob(base_digest).ok());
  EXPECT_EQ(reopened.get_blob(child_digest).value(), child);
}

TEST(TransferChunkStoreTest, CorruptStoredChunkIsDetectedOnReassembly) {
  auto backend = std::make_shared<store::MemStore>();
  ChunkStore store(backend);
  const std::string blob = payload(32 * 1024, 71);
  auto manifest = store.put_blob(blob);
  ASSERT_TRUE(manifest.ok());

  // Flip one byte inside some stored chunk, behind the store's back.
  auto entries = backend->list("transfer/chunk/");
  ASSERT_FALSE(entries.empty());
  const std::string victim = entries[entries.size() / 2].key;
  std::string bytes = backend->get(victim).value();
  bytes[bytes.size() / 2] ^= 0x08;
  ASSERT_TRUE(backend->put(victim, std::move(bytes)).ok());

  auto result = store.get_blob(manifest.value().blob_digest);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);
}

// ---------------------------------------------------------------------------
// Delta push/pull.

TEST(TransferDeltaTest, DeltaPushMovesOnlyTheDifference) {
  ChunkStore destination(std::make_shared<store::MemStore>());
  const std::string base = payload(128 * 1024, 81);
  std::string child = base;
  child.replace(child.size() / 3, 128, std::string(128, '%'));

  auto base_report = push_delta(base, {}, destination);
  ASSERT_TRUE(base_report.ok());
  EXPECT_TRUE(base_report.value().full_push);
  EXPECT_EQ(base_report.value().chunks_reused, 0u);

  auto child_report = push_delta(child, {base_report.value().blob_digest}, destination);
  ASSERT_TRUE(child_report.ok());
  EXPECT_FALSE(child_report.value().full_push);
  EXPECT_GT(child_report.value().chunks_reused, child_report.value().chunks_moved);
  EXPECT_LT(child_report.value().moved_fraction(), 0.4);
  EXPECT_EQ(destination.get_blob(child_report.value().blob_digest).value(), child);
}

TEST(TransferDeltaTest, MissingBaseFallsBackToFullPush) {
  ChunkStore destination(std::make_shared<store::MemStore>());
  const std::string blob = payload(64 * 1024, 91);
  auto report = push_delta(blob, {"sha256:" + Sha256::hex_digest("never pushed")},
                           destination);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().full_push);
  EXPECT_EQ(report.value().chunks_reused, 0u);
  EXPECT_EQ(destination.get_blob(report.value().blob_digest).value(), blob);
}

TEST(TransferDeltaTest, PartiallyGcdBaseStillYieldsCorrectBlob) {
  ChunkStore destination(std::make_shared<store::MemStore>());
  const std::string base = payload(96 * 1024, 101);
  auto base_report = push_delta(base, {}, destination);
  ASSERT_TRUE(base_report.ok());
  // GC the base: its chunks vanish, but the manifest probe is only advisory.
  ASSERT_TRUE(destination.erase_blob(base_report.value().blob_digest).ok());

  std::string child = base;
  child.append("new layer content");
  auto report = push_delta(child, {base_report.value().blob_digest}, destination);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().full_push);  // the base is gone
  EXPECT_EQ(destination.get_blob(report.value().blob_digest).value(), child);
}

TEST(TransferDeltaTest, PullReusesLocalChunksAndVerifies) {
  ChunkStore source(std::make_shared<store::MemStore>());
  ChunkStore local(std::make_shared<store::MemStore>());
  const std::string base = payload(96 * 1024, 111);
  std::string child = base;
  child.replace(child.size() / 2, 64, std::string(64, '&'));

  // The puller already has the base (pulled earlier); the child comes over
  // the wire as a delta.
  ASSERT_TRUE(push_delta(base, {}, source).ok());
  ASSERT_TRUE(push_delta(base, {}, local).ok());
  auto child_report = push_delta(child, {}, source);
  ASSERT_TRUE(child_report.ok());

  std::string pulled;
  auto report = pull_delta(source, child_report.value().blob_digest, local, &pulled);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(pulled, child);
  EXPECT_GT(report.value().chunks_reused, report.value().chunks_moved);
  EXPECT_LT(report.value().moved_fraction(), 0.4);
  // The pull materialized the blob locally: a second pull moves nothing.
  auto again = pull_delta(source, child_report.value().blob_digest, local);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().chunks_moved, 0u);
}

TEST(TransferDeltaTest, NegotiationRespectsDestinationAdvertisement) {
  ChunkStore::Options identity_only;
  identity_only.codecs = {CodecId::identity};
  ChunkStore destination(std::make_shared<store::MemStore>(), identity_only);
  const std::string blob = payload(32 * 1024, 121);
  auto report = push_delta(blob, {}, destination);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().codec, CodecId::identity);
  // Identity frames store raw bytes: moved >= blob size.
  EXPECT_GE(report.value().bytes_moved, blob.size());
}

// ---------------------------------------------------------------------------
// Over a RemoteStore: torn transfers and wire accounting.

TEST(TransferRemoteTest, TornChunkUploadIsDetectedAndRepushHeals) {
  auto inner = std::make_shared<store::MemStore>();
  auto remote = std::make_shared<store::RemoteStore>(inner);
  support::FaultInjector faults;
  remote->set_fault_injector(&faults);
  ChunkStore destination(remote);

  const std::string blob = payload(64 * 1024, 131);
  auto manifest = build_manifest(blob, destination.params());
  ASSERT_TRUE(manifest.ok());

  // Tear an upload mid-blob: the client dies, the endpoint keeps a prefix.
  faults.tear_next(std::string(store::kRemotePutSite), 0.5);
  EXPECT_THROW((void)push_delta(blob, {}, destination), support::CrashInjected);

  // The torn chunk reads back corrupt — never as a silently wrong chunk.
  bool saw_corrupt = false;
  for (const ChunkRef& chunk : manifest.value().chunks) {
    if (!destination.contains_chunk(chunk.digest)) continue;
    auto raw = destination.get_chunk(chunk.digest);
    if (!raw.ok()) {
      EXPECT_EQ(raw.error().code, Errc::corrupt);
      saw_corrupt = true;
    }
  }
  EXPECT_TRUE(saw_corrupt);

  // Re-push completes the transfer; any chunk the dedup probe kept trusting
  // but that reads back corrupt is healed with repair_chunk — the explicit
  // overwrite path a fsck pass drives.
  auto report = push_delta(blob, {}, destination);
  ASSERT_TRUE(report.ok());
  for (const ChunkRef& chunk : manifest.value().chunks) {
    if (destination.get_chunk(chunk.digest).ok()) continue;
    ASSERT_TRUE(destination
                    .repair_chunk(chunk.digest,
                                  std::string_view(blob).substr(chunk.offset, chunk.size),
                                  CodecId::lz)
                    .ok());
  }
  auto back = destination.get_blob(report.value().blob_digest);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), blob);
}

TEST(TransferRemoteTest, WireBytesCountAttemptsLogicalBytesCountOnce) {
  auto remote = std::make_shared<store::RemoteStore>(std::make_shared<store::MemStore>());
  support::FaultInjector faults;
  remote->set_fault_injector(&faults);
  obs::MetricsRegistry metrics;
  remote->set_observer(nullptr, &metrics);

  const std::string value = "0123456789";  // 10 logical, 22 framed
  const std::uint64_t frame = value.size() + 12;

  // Two failed attempts + one success: the wire carried the frame 3 times.
  faults.fail_next("remote.put", 2);
  ASSERT_TRUE(remote->put("k", value).ok());
  EXPECT_EQ(remote->wire_put_bytes(), 3 * frame);
  EXPECT_EQ(remote->logical_put_bytes(), value.size());
  EXPECT_EQ(metrics.counter_value("store.put_bytes"), 3 * frame);
  EXPECT_EQ(metrics.counter_value("store.remote.logical_put_bytes"), value.size());

  // Same for downloads.
  faults.fail_next("remote.get", 1);
  ASSERT_TRUE(remote->get("k").ok());
  EXPECT_EQ(remote->wire_get_bytes(), 2 * frame);
  EXPECT_EQ(remote->logical_get_bytes(), value.size());
  EXPECT_EQ(metrics.counter_value("store.get_bytes"), 2 * frame);
  EXPECT_EQ(metrics.counter_value("store.remote.logical_get_bytes"), value.size());

  // Retry exhaustion still counts the traffic the failed attempts burned.
  faults.fail_next("remote.put", 100);
  ASSERT_FALSE(remote->put("k2", value).ok());
  EXPECT_EQ(remote->wire_put_bytes(), 3 * frame + 3 * frame);  // 3 = max_attempts
  EXPECT_EQ(remote->logical_put_bytes(), value.size());        // unchanged
}

// ---------------------------------------------------------------------------
// Registry integration.

oci::ImageConfig image_config() {
  oci::ImageConfig c;
  c.config.entrypoint = {"/app"};
  return c;
}

vfs::Filesystem tree(std::string_view path, std::string content) {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file(std::string(path), std::move(content)).ok());
  return fs;
}

TEST(TransferRegistryTest, DeltaPushOfChildImageMovesFractionOfBytes) {
  registry::Registry hub;
  hub.enable_chunk_dedup(std::make_shared<ChunkStore>(std::make_shared<store::MemStore>()));

  // Generic parent and optimized child: the child's layer shares most of its
  // content with the parent's (one region recompiled).
  const std::string base_layer = payload(128 * 1024, 141);
  std::string child_layer = base_layer;
  child_layer.replace(child_layer.size() / 4, 256, std::string(256, '^'));

  oci::Layout local;
  ASSERT_TRUE(local.create_image(image_config(), {tree("/lib/app.so", base_layer)},
                                 "app:generic")
                  .ok());
  ASSERT_TRUE(local.create_image(image_config(), {tree("/lib/app.so", child_layer)},
                                 "app:optimized")
                  .ok());

  ASSERT_TRUE(hub.push(local, "app:generic", "org/app", "generic").ok());
  auto report = hub.push_delta(local, "app:optimized", "org/app", "optimized",
                               {"org/app:generic"});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().full_push);
  EXPECT_GT(report.value().chunks_reused, 0u);
  EXPECT_LT(report.value().moved_fraction(), 0.4);

  // The pulled child is bit-identical.
  oci::Layout remote;
  ASSERT_TRUE(hub.pull("org/app", "optimized", remote, "pulled").ok());
  auto image = remote.find_image("pulled");
  ASSERT_TRUE(image.ok());
  auto rootfs = remote.flatten(image.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_EQ(rootfs.value().read_file("/lib/app.so").value(), child_layer);

  registry::Stats stats = hub.stats();
  EXPECT_GT(stats.chunk_bytes_deduped, 0u);
  EXPECT_GT(stats.chunks_reused, 0u);
}

TEST(TransferRegistryTest, DeltaPullReusesLocalChunkCache) {
  registry::Registry hub;
  hub.enable_chunk_dedup(std::make_shared<ChunkStore>(std::make_shared<store::MemStore>()));

  const std::string base_layer = payload(96 * 1024, 151);
  std::string child_layer = base_layer;
  child_layer.replace(0, 128, std::string(128, '~'));

  oci::Layout local;
  ASSERT_TRUE(
      local.create_image(image_config(), {tree("/a", base_layer)}, "app:base").ok());
  ASSERT_TRUE(
      local.create_image(image_config(), {tree("/a", child_layer)}, "app:child").ok());
  ASSERT_TRUE(hub.push(local, "app:base", "org/app", "base").ok());
  ASSERT_TRUE(hub.push(local, "app:child", "org/app", "child").ok());

  // Pull the base first: the local chunk cache hydrates. The child pull then
  // moves only the delta.
  ChunkStore cache(std::make_shared<store::MemStore>());
  oci::Layout node_a;
  auto base_report = hub.pull_delta("org/app", "base", node_a, "base", &cache);
  ASSERT_TRUE(base_report.ok());
  oci::Layout node_b;
  auto child_report = hub.pull_delta("org/app", "child", node_b, "child", &cache);
  ASSERT_TRUE(child_report.ok());
  EXPECT_GT(child_report.value().chunks_reused, 0u);
  EXPECT_LT(child_report.value().bytes_moved, base_report.value().bytes_moved);

  auto image = node_b.find_image("child");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(node_b.flatten(image.value()).value().read_file("/a").value(), child_layer);
}

TEST(TransferRegistryTest, DeltaApiRequiresEnabledChunkDedup) {
  registry::Registry hub;
  oci::Layout local;
  ASSERT_TRUE(local.create_image(image_config(), {tree("/x", "data")}, "x:1").ok());
  EXPECT_EQ(hub.push_delta(local, "x:1", "org/x", "1").error().code, Errc::unsupported);
  EXPECT_EQ(hub.pull_delta("org/x", "1", local, "y").error().code, Errc::unsupported);
}

TEST(TransferRegistryTest, GcSweepsChunksWithBlobsButRespectsPins) {
  registry::Registry hub;
  auto chunks = std::make_shared<ChunkStore>(std::make_shared<store::MemStore>());
  hub.enable_chunk_dedup(chunks);

  oci::Layout local;
  ASSERT_TRUE(local.create_image(image_config(), {tree("/a", payload(64 * 1024, 161))},
                                 "app:v1")
                  .ok());
  ASSERT_TRUE(hub.push(local, "app:v1", "org/app", "1").ok());
  EXPECT_GT(chunks->chunk_count(), 0u);

  // Pinned (a journaled rebuild still names it): remove keeps blobs and
  // chunks alike.
  ASSERT_TRUE(hub.pin("org/app", "1").ok());
  ASSERT_TRUE(hub.remove("org/app", "1").ok());
  EXPECT_GT(chunks->chunk_count(), 0u);
  EXPECT_EQ(hub.stats().removed_blobs, 0u);

  // Re-push restores the reference; the rebuild finished, so the pin lifts
  // and the next remove sweeps layout blobs and chunks together.
  ASSERT_TRUE(hub.push(local, "app:v1", "org/app", "1").ok());
  ASSERT_TRUE(hub.unpin("org/app", "1").ok());
  ASSERT_TRUE(hub.remove("org/app", "1").ok());
  EXPECT_EQ(chunks->chunk_count(), 0u);
  EXPECT_EQ(chunks->blob_count(), 0u);
  EXPECT_GT(hub.stats().reclaimed_bytes, 0u);
}

}  // namespace
}  // namespace comt::transfer
