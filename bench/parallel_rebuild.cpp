// Microbenchmark for the parallel rebuild engine: comtainer_rebuild of the
// lammps extended image at 1/2/4/8 scheduler threads, sequential baseline
// first, plus a warm-cache rerun showing the content-addressed compile
// cache replaying every job, plus a tracing-overhead pair (tracer detached
// vs attached) that validates the exported Chrome trace: the document must
// re-parse through src/json, carry exactly one "job:*" span per compile job,
// and every job span's parent chain must reach the root "rebuild" span.
//
// The emitted JSON records its own provenance — hardware-thread count, CPU
// model, and run mode — so a checked-in baseline can never be silently
// compared against numbers from a different class of machine (see
// docs/PERFORMANCE.md for the baseline-recording procedure).
//
// Usage: parallel_rebuild [--smoke] [--trace PATH] [--json PATH]
//   --smoke        one repetition, CI-friendly thread sweep (1 and 2 threads,
//                  plus 4 when the host has >= 4 hardware threads — in which
//                  case a 4-thread speedup < 1.0 hard-fails). Also hard-fails
//                  if tracing overhead exceeds 5% with at least a 2 ms
//                  absolute delta (same noise floor as bench/crash_resume)
//                  or if the exported trace fails validation.
//   --trace PATH   write the traced rebuild's Chrome trace JSON to PATH
//                  (open in chrome://tracing or https://ui.perfetto.dev).
//   --json PATH    write machine-readable results to PATH.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "json/json.hpp"
#include "obs/trace.hpp"
#include "sched/compile_cache.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

struct World {
  oci::Layout layout;
  std::string extended_tag;
};

int build_world(const sysmodel::SystemProfile& system, World& world) {
  if (!workloads::install_user_images(world.layout, system.arch).ok() ||
      !workloads::install_system_images(world.layout, system).ok()) {
    std::fprintf(stderr, "installing evaluation images failed\n");
    return 1;
  }
  const workloads::AppSpec* app = workloads::find_app("lammps");
  if (app == nullptr) {
    std::fprintf(stderr, "lammps workload missing from corpus\n");
    return 1;
  }
  auto file = dockerfile::parse(workloads::dockerfile_text(*app, system.arch, true));
  if (!file.ok()) {
    std::fprintf(stderr, "dockerfile: %s\n", file.error().to_string().c_str());
    return 1;
  }
  buildexec::ImageBuilder builder(world.layout);
  builder.set_apt_source(&workloads::ubuntu_repo(system.arch));
  buildexec::BuildRecord record;
  auto built = builder.build(file.value(), workloads::build_context(*app), "lammps.dist",
                             "", &record);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.error().to_string().c_str());
    return 1;
  }
  auto stage = world.layout.find_image("lammps.dist.stage0");
  auto build_rootfs = world.layout.flatten(stage.value());
  auto extended =
      core::comtainer_build(world.layout, "lammps.dist", workloads::base_tag(system.arch),
                            record, build_rootfs.value());
  if (!extended.ok()) {
    std::fprintf(stderr, "comtainer_build: %s\n", extended.error().to_string().c_str());
    return 1;
  }
  world.extended_tag = "lammps.dist+coM";
  return 0;
}

core::RebuildOptions options_for(const sysmodel::SystemProfile& system,
                                 std::size_t threads, sched::CompileCache* cache) {
  core::RebuildOptions options;
  options.system = &system;
  options.system_repo = &workloads::system_repo(system);
  options.sysenv_tag = workloads::sysenv_tag(system);
  options.threads = threads;
  options.compile_cache = cache;
  return options;
}

double round3(double value) { return std::round(value * 1000.0) / 1000.0; }

/// "model name" line from /proc/cpuinfo, or "unknown" — recorded in the
/// JSON so a baseline carries the machine it was measured on.
std::string cpu_model() {
  std::FILE* info = std::fopen("/proc/cpuinfo", "r");
  if (info == nullptr) return "unknown";
  std::string model = "unknown";
  char line[512];
  while (std::fgets(line, sizeof line, info) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    if (const char* colon = std::strchr(line, ':')) {
      model = colon + 1;
      while (!model.empty() && (model.front() == ' ' || model.front() == '\t')) {
        model.erase(model.begin());
      }
      while (!model.empty() &&
             (model.back() == '\n' || model.back() == '\r' || model.back() == ' ')) {
        model.pop_back();
      }
    }
    break;
  }
  std::fclose(info);
  return model;
}

/// Checks the exported Chrome trace against the rebuild report: the JSON must
/// round-trip through src/json, hold exactly `report.jobs` events whose name
/// starts with "job:", and every job event's parent chain (args.id/args.parent
/// links) must terminate at the root "rebuild" span. Returns 0 on success.
int validate_trace(const std::string& trace_json, const core::RebuildReport& report,
                   std::size_t& span_count, std::size_t& job_spans) {
  auto parsed = json::parse(trace_json);
  if (!parsed.ok()) {
    std::fprintf(stderr, "TRACE: chrome trace does not re-parse: %s\n",
                 parsed.error().to_string().c_str());
    return 1;
  }
  const json::Value* events = parsed.value().find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "TRACE: missing traceEvents array\n");
    return 1;
  }
  span_count = events->as_array().size();
  std::map<std::uint64_t, std::uint64_t> parent_of;
  std::uint64_t root_id = 0;
  std::vector<std::uint64_t> job_ids;
  for (const json::Value& event : events->as_array()) {
    const json::Value* args = event.find("args");
    if (args == nullptr) {
      std::fprintf(stderr, "TRACE: event without args\n");
      return 1;
    }
    const std::uint64_t id = std::stoull(args->get_string("id", "0"));
    parent_of[id] = std::stoull(args->get_string("parent", "0"));
    const std::string name = event.get_string("name");
    if (name == "rebuild") root_id = id;
    if (name.rfind("job:", 0) == 0) job_ids.push_back(id);
  }
  job_spans = job_ids.size();
  if (root_id == 0) {
    std::fprintf(stderr, "TRACE: no root \"rebuild\" span\n");
    return 1;
  }
  if (job_ids.size() != report.jobs) {
    std::fprintf(stderr, "TRACE: %zu job spans but the report ran %zu compile jobs\n",
                 job_ids.size(), report.jobs);
    return 1;
  }
  for (std::uint64_t id : job_ids) {
    std::uint64_t cursor = id;
    std::size_t hops = 0;
    while (cursor != root_id && cursor != 0 && hops++ < parent_of.size()) {
      auto it = parent_of.find(cursor);
      cursor = it == parent_of.end() ? 0 : it->second;
    }
    if (cursor != root_id) {
      std::fprintf(stderr, "TRACE: job span %llu is not nested under the rebuild root\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }
  return 0;
}

int write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), out);
  std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string trace_path;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const int repetitions = smoke ? 1 : 5;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (smoke) {
    // CI sweep: keep it short, but include 4 threads whenever the host can
    // actually run 4 — that's the width the speedup gate below checks.
    thread_counts = hw_threads >= 4 ? std::vector<std::size_t>{1, 2, 4}
                                    : std::vector<std::size_t>{1, 2};
  }

  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  World world;
  if (int rc = build_world(system, world); rc != 0) return rc;

  std::printf("parallel rebuild of %s on %s (%d repetition%s, best time)\n",
              world.extended_tag.c_str(), system.name.c_str(), repetitions,
              repetitions == 1 ? "" : "s");
  std::printf("host reports %u hardware thread%s — speedups above that (or on a "
              "1-core host, above 1) are not expected\n",
              hw_threads, hw_threads == 1 ? "" : "s");
  std::printf("%-8s %12s %10s %10s %8s %12s\n", "threads", "best-ms", "sched-ms",
              "speedup", "jobs", "image-digest");

  json::Array sweep_json;
  double baseline_ms = 0;
  double speedup_at_4 = 0;
  std::string baseline_digest;
  for (std::size_t threads : thread_counts) {
    double best_ms = 0;
    double sched_ms = 0;
    std::size_t jobs = 0;
    std::string digest;
    for (int rep = 0; rep < repetitions; ++rep) {
      auto start = std::chrono::steady_clock::now();
      auto report =
          core::comtainer_rebuild(world.layout, world.extended_tag,
                                  options_for(system, threads, nullptr));
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (!report.ok()) {
        std::fprintf(stderr, "rebuild (threads=%zu): %s\n", threads,
                     report.error().to_string().c_str());
        return 1;
      }
      if (rep == 0 || ms < best_ms) {
        best_ms = ms;
        sched_ms = report.value().wall_ms;
      }
      jobs = report.value().jobs;
      digest = report.value().image.manifest_digest.value;
    }
    if (threads == thread_counts.front()) {
      baseline_ms = best_ms;
      baseline_digest = digest;
    }
    if (digest != baseline_digest) {
      std::fprintf(stderr, "DIGEST MISMATCH at %zu threads: parallel rebuild is not "
                           "bit-identical\n", threads);
      return 1;
    }
    std::printf("%-8zu %12.2f %10.2f %9.2fx %8zu %12.12s\n", threads, best_ms,
                sched_ms, baseline_ms / best_ms, jobs, digest.c_str());
    if (threads == 4) speedup_at_4 = baseline_ms / best_ms;
    json::Object row;
    row.emplace_back("threads", json::Value(static_cast<std::uint64_t>(threads)));
    row.emplace_back("best_ms", json::Value(round3(best_ms)));
    row.emplace_back("sched_ms", json::Value(round3(sched_ms)));
    row.emplace_back("speedup", json::Value(round3(baseline_ms / best_ms)));
    row.emplace_back("jobs", json::Value(static_cast<std::uint64_t>(jobs)));
    sweep_json.push_back(json::Value(std::move(row)));
  }

  // Concurrency must pay for itself: on a host that can actually run four
  // workers, a 4-thread rebuild slower than sequential is a regression in
  // the scheduler hot path, not noise.
  if (smoke) {
    if (hw_threads >= 4) {
      if (speedup_at_4 < 1.0) {
        std::fprintf(stderr, "SMOKE: 4-thread speedup %.2fx < 1.0x — concurrency "
                             "costs more than it buys\n", speedup_at_4);
        return 1;
      }
      std::printf("4-thread speedup gate passed: %.2fx\n", speedup_at_4);
    } else {
      std::printf("SKIP: 4-thread speedup gate needs >= 4 hardware threads, host "
                  "has %u\n", hw_threads);
    }
  }

  // Warm-cache rerun: every compile job replays from the cache.
  sched::CompileCache cache;
  auto cold = core::comtainer_rebuild(world.layout, world.extended_tag,
                                      options_for(system, 2, &cache));
  auto warm_start = std::chrono::steady_clock::now();
  auto warm = core::comtainer_rebuild(world.layout, world.extended_tag,
                                      options_for(system, 2, &cache));
  double warm_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - warm_start)
                       .count();
  if (!cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "cached rebuild failed\n");
    return 1;
  }
  std::printf("\nwarm compile cache (2 threads): %.2f ms, %zu/%zu jobs replayed "
              "(hit rate %.0f%%)\n",
              warm_ms, warm.value().cache_hits, warm.value().jobs,
              warm.value().jobs == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(warm.value().cache_hits) /
                        static_cast<double>(warm.value().jobs));
  if (warm.value().cache_misses != 0) {
    std::fprintf(stderr, "expected a fully warm cache, saw %zu misses\n",
                 warm.value().cache_misses);
    return 1;
  }

  // ---- tracing overhead ----------------------------------------------------
  // Best-of-reps at 2 threads with the tracer detached, then attached (a
  // fresh Tracer per repetition so span buffers never accumulate across
  // reps). The traced run's export is then validated structurally.
  double off_ms = 0;
  double on_ms = 0;
  std::unique_ptr<obs::Tracer> best_tracer;
  core::RebuildReport traced_report;
  for (int rep = 0; rep < repetitions; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto report = core::comtainer_rebuild(world.layout, world.extended_tag,
                                          options_for(system, 2, nullptr));
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!report.ok()) {
      std::fprintf(stderr, "untraced rebuild: %s\n", report.error().to_string().c_str());
      return 1;
    }
    if (rep == 0 || ms < off_ms) off_ms = ms;
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    auto tracer = std::make_unique<obs::Tracer>();
    core::RebuildOptions options = options_for(system, 2, nullptr);
    options.tracer = tracer.get();
    auto start = std::chrono::steady_clock::now();
    auto report = core::comtainer_rebuild(world.layout, world.extended_tag, options);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!report.ok()) {
      std::fprintf(stderr, "traced rebuild: %s\n", report.error().to_string().c_str());
      return 1;
    }
    if (rep == 0 || ms < on_ms) {
      on_ms = ms;
      best_tracer = std::move(tracer);
      traced_report = std::move(report).value();
    }
  }
  const double overhead_delta = on_ms - off_ms;
  const double overhead_pct = off_ms == 0 ? 0.0 : 100.0 * overhead_delta / off_ms;
  std::printf("\ntracing overhead (2 threads): off %.2f ms, on %.2f ms (%+.2f%%), "
              "%zu spans\n",
              off_ms, on_ms, overhead_pct, best_tracer->span_count());
  std::printf("%s", traced_report.profile.to_string().c_str());

  const std::string trace_json = best_tracer->chrome_trace_json();
  std::size_t span_count = 0;
  std::size_t job_spans = 0;
  if (validate_trace(trace_json, traced_report, span_count, job_spans) != 0) return 1;
  std::printf("trace validated: %zu events, %zu compile-job spans nested under the "
              "rebuild root\n", span_count, job_spans);
  if (!trace_path.empty()) {
    if (write_file(trace_path, trace_json) != 0) return 1;
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  // Same noise policy as bench/crash_resume: on a ~3 ms simulated rebuild the
  // relative figure swings run to run, so the percentage gate only fires when
  // the absolute delta also clears a 2 ms floor.
  if (smoke && overhead_pct > 5.0 && overhead_delta >= 2.0) {
    std::fprintf(stderr, "SMOKE: tracing overhead %.2f%% (%.2f ms) exceeds the 5%% "
                         "bar with a 2 ms floor\n", overhead_pct, overhead_delta);
    return 1;
  }

  if (!json_path.empty()) {
    json::Object doc;
    doc.emplace_back("workload", json::Value(world.extended_tag));
    doc.emplace_back("system", json::Value(system.name));
    doc.emplace_back("mode", json::Value(std::string(smoke ? "smoke" : "full")));
    doc.emplace_back("hardware_threads",
                     json::Value(static_cast<std::uint64_t>(hw_threads)));
    doc.emplace_back("cpu_model", json::Value(cpu_model()));
    doc.emplace_back("repetitions", json::Value(repetitions));
    doc.emplace_back("compile_jobs",
                     json::Value(static_cast<std::uint64_t>(traced_report.jobs)));
    doc.emplace_back("threads", json::Value(std::move(sweep_json)));
    json::Object warm_obj;
    warm_obj.emplace_back("warm_ms", json::Value(round3(warm_ms)));
    warm_obj.emplace_back("hits",
                          json::Value(static_cast<std::uint64_t>(warm.value().cache_hits)));
    warm_obj.emplace_back("jobs",
                          json::Value(static_cast<std::uint64_t>(warm.value().jobs)));
    doc.emplace_back("warm_cache", json::Value(std::move(warm_obj)));
    json::Object tracing;
    tracing.emplace_back("off_ms", json::Value(round3(off_ms)));
    tracing.emplace_back("on_ms", json::Value(round3(on_ms)));
    tracing.emplace_back("overhead_pct", json::Value(round3(overhead_pct)));
    tracing.emplace_back("spans", json::Value(static_cast<std::uint64_t>(span_count)));
    tracing.emplace_back("compile_job_spans",
                         json::Value(static_cast<std::uint64_t>(job_spans)));
    doc.emplace_back("tracing", json::Value(std::move(tracing)));
    if (write_file(json_path, json::serialize_pretty(json::Value(std::move(doc)))) != 0) {
      return 1;
    }
    std::printf("results written to %s\n", json_path.c_str());
  }
  return 0;
}
