// PGO feedback loop (§4.4): coMtainer makes profile-guided optimization
// practical by automating the instrument → run-on-system → recompile cycle
// that normally makes PGO "unprofitable" for pre-built HPC applications.
//
// This example optimizes the same LAMMPS image twice — once against the `lj`
// input and once against `chain` — and shows that PGO's payoff is input-
// specific: lj speeds up, chain regresses (exactly the paper's Fig. 10
// spread). It then prints the per-kernel profile the trial run produced.
#include <cstdio>

#include "core/backend.hpp"
#include "sysmodel/sysmodel.hpp"
#include "toolchain/driver.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

const workloads::WorkloadInput* find_input(const workloads::AppSpec& app,
                                           std::string_view name) {
  for (const workloads::WorkloadInput& input : app.inputs) {
    if (input.name == name) return &input;
  }
  return nullptr;
}

}  // namespace

int main() {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  const workloads::AppSpec* app = workloads::find_app("lammps");
  if (app == nullptr) return 1;

  std::printf("== automated PGO feedback: %s on %s ==\n\n", app->name.c_str(),
              system.name.c_str());

  workloads::Evaluation world(system);
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.error().to_string().c_str());
    return 1;
  }

  // Baseline: the adapted image (native toolchain + libs, no LTO/PGO).
  auto adapted_tag = world.adapt(*app, prepared.value());
  if (!adapted_tag.ok()) return 1;

  for (const char* input_name : {"lj", "chain"}) {
    const workloads::WorkloadInput* input = find_input(*app, input_name);
    if (input == nullptr) continue;

    auto adapted_seconds = world.run_image(adapted_tag.value(), *input, system.nodes);
    // Rebuild with LTO+PGO; the feedback trial mirrors this input.
    auto optimized_tag = world.optimize(*app, prepared.value(), *input, system.nodes);
    if (!optimized_tag.ok() || !adapted_seconds.ok()) {
      std::fprintf(stderr, "optimize(%s) failed\n", input_name);
      return 1;
    }
    auto optimized_seconds = world.run_image(optimized_tag.value(), *input, system.nodes);
    if (!optimized_seconds.ok()) return 1;
    double gain =
        (1.0 - optimized_seconds.value() / adapted_seconds.value()) * 100.0;
    std::printf("lammps.%-6s adapted %7.2fs -> optimized(LTO+PGO) %7.2fs   %+.1f%%%s\n",
                input_name, adapted_seconds.value(), optimized_seconds.value(), gain,
                gain < 0 ? "   (profile mispredicts this input)" : "");
  }

  // Show what the feedback loop actually measured: run the instrumented
  // binary by hand and dump its profile.
  std::printf("\nPer-kernel profile from an instrumented lj trial run:\n");
  auto image = world.layout().find_image(adapted_tag.value());
  if (!image.ok()) return 1;
  auto rootfs = world.layout().flatten(image.value());
  if (!rootfs.ok()) return 1;
  // Mark the binary instrumented and run it.
  auto blob = rootfs.value().read_file(app->binary_path());
  auto exe = toolchain::parse_image(blob.value());
  if (!exe.ok()) return 1;
  toolchain::LinkedImage instrumented = exe.value();
  instrumented.codegen.pgo_instrumented = true;
  for (auto& object : instrumented.objects) object.codegen.pgo_instrumented = true;
  if (!rootfs.value()
           .write_file(app->binary_path(), toolchain::serialize_image(instrumented), 0755)
           .ok()) {
    return 1;
  }
  sysmodel::ExecutionEngine engine(system);
  auto report = engine.run(rootfs.value(), app->binary_path(),
                           find_input(*app, "lj")->run_request(system.nodes));
  if (!report.ok()) return 1;
  auto weights = toolchain::parse_profile(report.value().profile_blob);
  if (!weights.ok()) return 1;
  for (const auto& [kernel, weight] : weights.value()) {
    std::printf("  %-16s %5.1f%%\n", kernel.c_str(), weight * 100.0);
  }
  return 0;
}
