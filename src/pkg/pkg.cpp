#include "pkg/pkg.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace comt::pkg {
namespace {

constexpr std::string_view kDebInfoDir = "/var/lib/dpkg/info";
constexpr std::string_view kRpmInfoDir = "/var/lib/rpm/files";

std::string file_list_path(PackageFormat format, std::string_view package_name) {
  std::string_view dir = format == PackageFormat::deb ? kDebInfoDir : kRpmInfoDir;
  return std::string(dir) + "/" + std::string(package_name) + ".list";
}

/// Field names differ between the two dialects (dpkg "Package:", rpm "Name:").
std::string_view name_key(PackageFormat format) {
  return format == PackageFormat::deb ? "Package" : "Name";
}
std::string_view arch_key(PackageFormat format) {
  return format == PackageFormat::deb ? "Architecture" : "Arch";
}
std::string_view depends_key(PackageFormat format) {
  return format == PackageFormat::deb ? "Depends" : "Requires";
}
std::string_view section_key(PackageFormat format) {
  return format == PackageFormat::deb ? "Section" : "Group";
}

}  // namespace

const char* variant_name(Variant variant) {
  return variant == Variant::generic ? "generic" : "optimized";
}

std::uint64_t Package::installed_size() const {
  std::uint64_t total = 0;
  for (const PackageFile& file : files) total += file.content.size();
  return total;
}

double Package::attribute_double(std::string_view key, double fallback) const {
  auto it = attributes.find(std::string(key));
  if (it == attributes.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

std::string Package::attribute(std::string_view key, std::string fallback) const {
  auto it = attributes.find(std::string(key));
  return it == attributes.end() ? std::move(fallback) : it->second;
}

Status Repository::add(Package package) {
  if (packages_.count(package.name) != 0) {
    return make_error(Errc::already_exists, "duplicate package: " + package.name);
  }
  for (const std::string& virtual_name : package.provides) {
    provides_.emplace(virtual_name, package.name);
  }
  std::string name = package.name;
  packages_.emplace(std::move(name), std::move(package));
  return Status::success();
}

const Package* Repository::find(std::string_view name) const {
  auto it = packages_.find(std::string(name));
  if (it != packages_.end()) return &it->second;
  auto virt = provides_.find(std::string(name));
  if (virt != provides_.end()) {
    auto real = packages_.find(virt->second);
    if (real != packages_.end()) return &real->second;
  }
  return nullptr;
}

std::vector<std::string> Repository::package_names() const {
  std::vector<std::string> names;
  names.reserve(packages_.size());
  for (const auto& [name, package] : packages_) names.push_back(name);
  return names;
}

Result<std::vector<const Package*>> resolve(
    const Repository& repo, const std::vector<std::string>& roots,
    const std::vector<std::string>& already_installed) {
  std::vector<const Package*> order;
  std::map<std::string, int> state;  // 0 unseen / 1 visiting / 2 done
  for (const std::string& name : already_installed) state[name] = 2;

  // Iterative DFS with an explicit stack (post-order = dependencies first).
  struct Frame {
    const Package* package;
    std::size_t next_dep = 0;
  };
  for (const std::string& root : roots) {
    const Package* root_package = repo.find(root);
    if (root_package == nullptr) {
      return make_error(Errc::not_found, "no candidate for package: " + root);
    }
    if (state[root_package->name] == 2) continue;
    std::vector<Frame> stack;
    state[root_package->name] = 1;
    stack.push_back({root_package});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_dep < frame.package->depends.size()) {
        const std::string& dep_name = frame.package->depends[frame.next_dep++];
        const Package* dep = repo.find(dep_name);
        if (dep == nullptr) {
          return make_error(Errc::not_found, "package " + frame.package->name +
                                                 " depends on missing " + dep_name);
        }
        int& dep_state = state[dep->name];
        if (dep_state == 1) {
          return make_error(Errc::invalid_argument,
                            "dependency cycle through " + dep->name);
        }
        if (dep_state == 0) {
          dep_state = 1;
          stack.push_back({dep});
        }
      } else {
        state[frame.package->name] = 2;
        order.push_back(frame.package);
        stack.pop_back();
      }
    }
  }
  return order;
}

Result<Database> Database::load(const vfs::Filesystem& fs) {
  Database db;
  std::string status_path;
  if (fs.is_regular(kStatusPath)) {
    db.format_ = PackageFormat::deb;
    status_path = std::string(kStatusPath);
  } else if (fs.is_regular(kRpmStatusPath)) {
    db.format_ = PackageFormat::rpm;
    status_path = std::string(kRpmStatusPath);
  } else {
    return db;
  }
  COMT_TRY(std::string status, fs.read_file(status_path));

  InstalledPackage current;
  auto flush = [&]() -> Status {
    if (current.name.empty()) return Status::success();
    // Owned files come from the .list file next to the status database.
    std::string list_path = file_list_path(db.format_, current.name);
    if (fs.is_regular(list_path)) {
      COMT_TRY(std::string listing, fs.read_file(list_path));
      for (const std::string& line : split(listing, '\n')) {
        if (!line.empty()) current.files.push_back(line);
      }
    }
    for (const std::string& path : current.files) db.owners_[path] = current.name;
    db.installed_[current.name] = std::move(current);
    current = InstalledPackage{};
    return Status::success();
  };

  for (const std::string& raw_line : split(status, '\n')) {
    std::string_view line = raw_line;
    if (trim(line).empty()) {
      COMT_TRY_STATUS(flush());
      continue;
    }
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string key(trim(line.substr(0, colon)));
    std::string value(trim(line.substr(colon + 1)));
    if (key == name_key(db.format_)) {
      current.name = value;
    } else if (key == "Version") {
      current.version = value;
    } else if (key == arch_key(db.format_)) {
      current.architecture = value;
    } else if (key == section_key(db.format_)) {
      current.section = value;
    } else if (key == "Variant") {
      current.variant = value == "optimized" ? Variant::optimized : Variant::generic;
    } else if (key == depends_key(db.format_)) {
      for (const std::string& dep : split(value, ',')) {
        std::string trimmed(trim(dep));
        if (!trimmed.empty()) current.depends.push_back(trimmed);
      }
    } else if (starts_with(key, "X-Comt-")) {
      current.attributes[key.substr(7)] = value;
    }
  }
  COMT_TRY_STATUS(flush());
  return db;
}

Status Database::install(vfs::Filesystem& fs, const Package& package) {
  if (installed_.count(package.name) != 0) {
    return make_error(Errc::already_exists, "package already installed: " + package.name);
  }
  for (const PackageFile& file : package.files) {
    std::string normal = normalize_path(file.path);
    auto owner = owners_.find(normal);
    if (owner != owners_.end() && owner->second != package.name) {
      return make_error(Errc::already_exists, "file " + normal + " owned by " +
                                                  owner->second + ", conflicts with " +
                                                  package.name);
    }
  }
  InstalledPackage record;
  record.name = package.name;
  record.version = package.version;
  record.architecture = package.architecture;
  record.variant = package.variant;
  record.depends = package.depends;
  record.section = package.section;
  record.attributes = package.attributes;
  std::string listing;
  for (const PackageFile& file : package.files) {
    std::string normal = normalize_path(file.path);
    COMT_TRY_STATUS(fs.write_file(normal, file.content, file.mode));
    record.files.push_back(normal);
    owners_[normal] = package.name;
    listing += normal;
    listing += '\n';
  }
  COMT_TRY_STATUS(fs.write_file(file_list_path(format_, package.name), listing));
  installed_[package.name] = std::move(record);
  return persist(fs);
}

Status Database::remove(vfs::Filesystem& fs, std::string_view name) {
  auto it = installed_.find(std::string(name));
  if (it == installed_.end()) {
    return make_error(Errc::not_found, "package not installed: " + std::string(name));
  }
  for (const std::string& path : it->second.files) {
    owners_.erase(path);
    if (fs.exists(path)) COMT_TRY_STATUS(fs.remove(path));
  }
  std::string list_path = file_list_path(format_, it->second.name);
  if (fs.exists(list_path)) COMT_TRY_STATUS(fs.remove(list_path));
  installed_.erase(it);
  return persist(fs);
}

bool Database::installed(std::string_view name) const {
  return installed_.count(std::string(name)) != 0;
}

const InstalledPackage* Database::find(std::string_view name) const {
  auto it = installed_.find(std::string(name));
  return it == installed_.end() ? nullptr : &it->second;
}

std::string Database::owner_of(std::string_view path) const {
  auto it = owners_.find(normalize_path(path));
  return it == owners_.end() ? "" : it->second;
}

std::vector<std::string> Database::installed_names() const {
  std::vector<std::string> names;
  names.reserve(installed_.size());
  for (const auto& [name, record] : installed_) names.push_back(name);
  return names;
}

Status Database::persist(vfs::Filesystem& fs) const {
  std::string status;
  for (const auto& [name, record] : installed_) {
    status += std::string(name_key(format_)) + ": " + record.name + "\n";
    status += "Version: " + record.version + "\n";
    status += std::string(arch_key(format_)) + ": " + record.architecture + "\n";
    status += std::string(section_key(format_)) + ": " + record.section + "\n";
    status += std::string("Variant: ") + variant_name(record.variant) + "\n";
    if (!record.depends.empty()) {
      status += std::string(depends_key(format_)) + ": " + join(record.depends, ", ") + "\n";
    }
    for (const auto& [key, value] : record.attributes) {
      status += "X-Comt-" + key + ": " + value + "\n";
    }
    status += "\n";
  }
  std::string_view path = format_ == PackageFormat::deb ? kStatusPath : kRpmStatusPath;
  return fs.write_file(path, std::move(status));
}

}  // namespace comt::pkg
