#include <gtest/gtest.h>

#include "core/adapters.hpp"
#include "workloads/environment.hpp"

namespace comt::core {
namespace {

BuildGraph graph_with_command(std::vector<std::string> argv) {
  BuildGraph graph;
  GraphNode source;
  source.kind = NodeKind::source;
  source.path = "/w/x.cc";
  source.content_digest = "d";
  graph.add_node(std::move(source));
  GraphNode object;
  object.kind = NodeKind::object;
  object.path = "/w/x.o";
  object.deps = {0};
  auto command = toolchain::parse_command(argv);
  EXPECT_TRUE(command.ok());
  object.compile = command.value();
  object.toolchain_id = "gnu-generic";
  graph.add_node(std::move(object));
  return graph;
}

AdapterContext x86_context() {
  return AdapterContext{&sysmodel::SystemProfile::x86_cluster(),
                        &workloads::system_repo(sysmodel::SystemProfile::x86_cluster())};
}

TEST(ToolchainAdapterTest, RedirectsProgramAndFlags) {
  BuildGraph graph =
      graph_with_command({"gcc", "-O2", "-march=x86-64", "-c", "x.cc", "-o", "x.o"});
  ToolchainAdapter adapter;
  ASSERT_TRUE(adapter.adapt_graph(graph, x86_context()).ok());
  const toolchain::CompileCommand& command = *graph.node(1).compile;
  EXPECT_EQ(command.program, std::string(kSystemToolchainDir) + "/gcc");
  EXPECT_EQ(command.march, "native");
  EXPECT_EQ(command.opt_level, 3);
  EXPECT_TRUE(command.mtune.empty());
  EXPECT_EQ(graph.node(1).toolchain_id, "vendor-x86");
}

TEST(ToolchainAdapterTest, PreservesMpiWrapperIdentity) {
  BuildGraph graph = graph_with_command({"mpicc", "-O2", "x.o", "-o", "app"});
  ToolchainAdapter adapter;
  ASSERT_TRUE(adapter.adapt_graph(graph, x86_context()).ok());
  EXPECT_EQ(graph.node(1).compile->program,
            std::string(kSystemToolchainDir) + "/mpicc");
}

TEST(ToolchainAdapterTest, LeavesLeavesAlone) {
  BuildGraph graph = graph_with_command({"gcc", "-c", "x.cc"});
  ToolchainAdapter adapter;
  ASSERT_TRUE(adapter.adapt_graph(graph, x86_context()).ok());
  EXPECT_TRUE(graph.node(0).is_leaf());
  EXPECT_FALSE(graph.node(0).compile.has_value());
}

TEST(ToolchainAdapterTest, RequiresSystem) {
  BuildGraph graph = graph_with_command({"gcc", "-c", "x.cc"});
  ToolchainAdapter adapter;
  AdapterContext empty;
  EXPECT_FALSE(adapter.adapt_graph(graph, empty).ok());
}

TEST(LtoAdapterTest, EnablesLtoEverywhere) {
  BuildGraph graph = graph_with_command({"gcc", "-O0", "-c", "x.cc"});
  LtoAdapter adapter;
  ASSERT_TRUE(adapter.adapt_graph(graph, x86_context()).ok());
  EXPECT_TRUE(graph.node(1).compile->lto);
  EXPECT_GE(graph.node(1).compile->opt_level, 2);
}

TEST(CrossIsaAdapterTest, StripsMachineOptions) {
  BuildGraph graph = graph_with_command(
      {"gcc", "-O2", "-march=x86-64-v3", "-mtune=skylake", "-msse4.2", "-mavx2",
       "-DKEEP_ME", "-funroll-loops", "-c", "x.cc"});
  CrossIsaAdapter adapter;
  AdapterContext context{&sysmodel::SystemProfile::aarch64_cluster(),
                         &workloads::system_repo(sysmodel::SystemProfile::aarch64_cluster())};
  ASSERT_TRUE(adapter.adapt_graph(graph, context).ok());
  const toolchain::CompileCommand& command = *graph.node(1).compile;
  EXPECT_TRUE(command.march.empty());
  EXPECT_TRUE(command.mtune.empty());
  for (const toolchain::GenericOption& option : command.generic) {
    EXPECT_NE(option.category, toolchain::OptionCategory::machine) << option.name;
  }
  // Non-machine options survive.
  EXPECT_EQ(command.defines, std::vector<std::string>{"KEEP_ME"});
  EXPECT_TRUE(command.flag_enabled("-funroll-loops"));
}

TEST(LibraryAdapterTest, ProposesOptimizedReplacements) {
  ImageModel model;
  model.runtime_packages.push_back({"libblas", "3.11-1", "generic"});
  model.runtime_packages.push_back({"mpich", "4.1-2", "generic"});
  model.runtime_packages.push_back({"not-in-system-repo", "1", "generic"});
  LibraryAdapter adapter;
  std::map<std::string, std::string> replacements;
  adapter.adapt_packages(replacements, model, x86_context());
  EXPECT_EQ(replacements.size(), 2u);
  EXPECT_EQ(replacements.at("libblas"), "libblas");
  EXPECT_EQ(replacements.at("mpich"), "mpich");
  EXPECT_EQ(replacements.count("not-in-system-repo"), 0u);
}

TEST(LibraryAdapterTest, SkipsAlreadyOptimized) {
  ImageModel model;
  model.runtime_packages.push_back({"libblas", "3.11-1+sys1", "optimized"});
  LibraryAdapter adapter;
  std::map<std::string, std::string> replacements;
  adapter.adapt_packages(replacements, model, x86_context());
  EXPECT_TRUE(replacements.empty());
}

TEST(SchemesTest, AdapterSetsMatchThePaper) {
  auto adapted = adapted_scheme();
  ASSERT_EQ(adapted.size(), 2u);
  EXPECT_EQ(adapted[0]->name(), "libo");
  EXPECT_EQ(adapted[1]->name(), "cxxo");
  EXPECT_FALSE(adapted[0]->wants_profile_feedback());

  auto optimized = optimized_scheme();
  ASSERT_EQ(optimized.size(), 4u);
  EXPECT_EQ(optimized[2]->name(), "lto");
  EXPECT_EQ(optimized[3]->name(), "pgo");
  EXPECT_TRUE(optimized[3]->wants_profile_feedback());
}

TEST(SchemesTest, AdaptersWorkOnIndependentCopies) {
  // Running an adapter must not disturb the original graph the caller holds
  // (the paper: "operate on independent copies of the process models").
  BuildGraph original = graph_with_command({"gcc", "-O2", "-c", "x.cc"});
  BuildGraph copy = original;
  ToolchainAdapter adapter;
  ASSERT_TRUE(adapter.adapt_graph(copy, x86_context()).ok());
  EXPECT_EQ(original.node(1).compile->program, "gcc");
  EXPECT_NE(copy.node(1).compile->program, "gcc");
}

}  // namespace
}  // namespace comt::core
