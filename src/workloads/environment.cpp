#include "workloads/environment.hpp"

#include <map>

#include "buildexec/container.hpp"
#include "toolchain/driver.hpp"
#include "toolchain/toolchains.hpp"

namespace comt::workloads {
namespace {

/// One library row: name, sim-MiB on each arch, speed attributes per system.
struct LibraryRow {
  std::string_view name;
  double mib_amd64;
  double mib_arm64;
  std::vector<std::string_view> depends;
  std::string_view header;  ///< /usr/include/<header> shipped alongside
};

const std::vector<LibraryRow>& library_rows() {
  static const std::vector<LibraryRow> rows = {
      {"libm", 1.2, 0.9, {}, "math.h"},
      {"libblas", 2.4, 1.8, {"libm"}, "cblas.h"},
      {"liblapack", 2.8, 2.1, {"libblas"}, "lapacke.h"},
      {"libfftw", 20.0, 20.5, {"libm"}, "fftw3.h"},
      {"libjpeg", 12.0, 11.5, {}, "jpeglib.h"},
      {"libscalapack", 120.0, 118.0, {"libblas", "mpich"}, "scalapack.h"},
      {"libelpa", 90.0, 88.0, {"libscalapack"}, "elpa.h"},
      {"libxc", 55.0, 54.0, {"libm"}, "xc.h"},
  };
  return rows;
}

/// Generic library speeds are 1.0 by construction; optimized speeds per
/// system model the vendor math/comm stacks (larger on the AArch64 platform,
/// where the generic stack is weakest — see Fig. 9's bigger gains).
double optimized_libspeed(std::string_view lib, std::string_view arch) {
  const bool arm = arch == "arm64";
  if (lib == "libm") return arm ? 2.6 : 2.6;
  if (lib == "libblas") return arm ? 1.9 : 3.4;
  if (lib == "liblapack") return arm ? 1.9 : 3.2;
  if (lib == "libfftw") return arm ? 1.8 : 3.0;
  if (lib == "libjpeg") return 1.3;
  if (lib == "libscalapack") return arm ? 1.9 : 4.2;
  if (lib == "libelpa") return arm ? 1.8 : 3.8;
  if (lib == "libxc") return arm ? 1.8 : 3.4;
  return 1.5;
}

/// Strips the "lib" prefix: package libblas ships libblas.so whose -l name
/// is "blas".
std::string link_name(std::string_view lib) {
  std::string name(lib);
  if (name.rfind("lib", 0) == 0) name = name.substr(3);
  return name;
}

pkg::Package make_library_package(const LibraryRow& row, std::string_view arch,
                                  pkg::Variant variant) {
  pkg::Package package;
  package.name = std::string(row.name);
  package.version = variant == pkg::Variant::generic ? "3.11-1" : "3.11-1+sys1";
  package.architecture = std::string(arch);
  package.variant = variant;
  for (std::string_view dep : row.depends) package.depends.emplace_back(dep);
  package.section = "libs";
  package.description = std::string(row.name) + " runtime";
  double speed = variant == pkg::Variant::generic ? 1.0 : optimized_libspeed(row.name, arch);
  package.attributes["libspeed"] = std::to_string(speed);

  std::map<std::string, double> attributes{{"libspeed", speed}};
  double mib = arch == "arm64" ? row.mib_arm64 : row.mib_amd64;
  std::string soname = std::string(row.name) + ".so";
  std::string blob = toolchain::make_library_blob(soname, arch, attributes);
  // Pad the blob so the package occupies its Table-3-calibrated size.
  blob += "\n//PAD//" + filler(mib - to_sim_mib(blob.size()), row.name);
  package.files.push_back({"/usr/lib/lib" + link_name(row.name) + ".so", blob, 0755});
  package.files.push_back({"/usr/include/" + std::string(row.header),
                           "// " + std::string(row.header) + " (" +
                               pkg::variant_name(variant) + ")\n",
                           0644});
  return package;
}

/// MPI package: generic mpich drives TCP and standard InfiniBand; the
/// vendor MPI adds the system's proprietary fabric plugin (the exact gap the
/// paper blames for lulesh's AArch64 collapse).
pkg::Package make_mpi_package(std::string_view arch, pkg::Variant variant,
                              std::string_view vendor_fabric) {
  pkg::Package package;
  package.name = "mpich";
  package.version = variant == pkg::Variant::generic ? "4.1-2" : "4.1-2+sys1";
  package.architecture = std::string(arch);
  package.variant = variant;
  package.provides = {"libmpi"};
  package.section = "net";
  package.description = "MPI implementation";

  std::map<std::string, double> attributes{{"libspeed", 1.0},
                                           {"fabric_tcp", 1.0},
                                           {"fabric_ib", 1.0}};
  if (variant == pkg::Variant::optimized && !vendor_fabric.empty()) {
    attributes["fabric_" + std::string(vendor_fabric)] = 1.0;
    attributes["libspeed"] = 1.6;
    package.attributes["fabric"] = std::string(vendor_fabric);
  }
  std::string blob = toolchain::make_library_blob("libmpi.so", arch, attributes);
  blob += "\n//PAD//" + filler(2.5 - to_sim_mib(blob.size()), "mpich");
  package.files.push_back({"/usr/lib/libmpi.so", blob, 0755});
  package.files.push_back({"/usr/include/mpi.h", "// mpi.h\n", 0644});
  package.files.push_back(
      {"/usr/bin/mpicc", toolchain::make_toolchain_stub("gnu-generic"), 0755});
  return package;
}

/// The distro compiler package (build-essential pulls it in).
pkg::Package make_gcc_package(std::string_view arch) {
  pkg::Package package;
  package.name = "gcc";
  package.version = "12.2-9";
  package.architecture = std::string(arch);
  package.section = "devel";
  package.description = "GNU C/C++ compiler";
  std::string stub = toolchain::make_toolchain_stub("gnu-generic");
  for (std::string_view name : {"gcc", "g++", "cc", "c++", "gfortran"}) {
    package.files.push_back({"/usr/bin/" + std::string(name), stub, 0755});
  }
  package.files.push_back({"/usr/bin/ar", "#!binutils-ar\n", 0755});
  package.files.push_back({"/usr/lib/gcc/crt1.o", filler(1.5, "crt"), 0644});
  return package;
}

pkg::Package make_build_essential(std::string_view arch) {
  pkg::Package package;
  package.name = "build-essential";
  package.version = "12.10";
  package.architecture = std::string(arch);
  package.section = "devel";
  package.description = "build toolchain metapackage";
  package.depends = {"gcc"};
  return package;
}

/// The vendor toolchain package installed only in Sysenv images, under
/// /opt/system/bin so the generic /usr/bin toolchain stays available.
pkg::Package make_vendor_toolchain(const sysmodel::SystemProfile& system) {
  pkg::Package package;
  package.name = "system-toolchain";
  package.version = "2025.1";
  package.architecture = system.arch;
  package.variant = pkg::Variant::optimized;
  package.section = "devel";
  package.description = "vendor compiler suite for " + system.name;
  package.attributes["march"] = system.native_march;
  std::string stub = toolchain::make_toolchain_stub(system.native_toolchain);
  for (std::string_view name : {"gcc", "g++", "cc", "c++", "gfortran", "mpicc", "mpicxx"}) {
    package.files.push_back({"/opt/system/bin/" + std::string(name), stub, 0755});
  }
  package.files.push_back({"/opt/system/share/doc", filler(4.0, "vendor-doc"), 0644});
  return package;
}

/// LLVM alternative toolchain (the artifact's freely redistributable
/// stand-in), available from both distro archives.
pkg::Package make_llvm_package(std::string_view arch) {
  pkg::Package package;
  package.name = "clang";
  package.version = "17.0-3";
  package.architecture = std::string(arch);
  package.section = "devel";
  package.description = "LLVM C/C++ compiler";
  std::string stub = toolchain::make_toolchain_stub("llvm");
  package.files.push_back({"/usr/bin/clang", stub, 0755});
  package.files.push_back({"/usr/bin/clang++", stub, 0755});
  return package;
}

pkg::Repository make_ubuntu_repo(std::string_view arch) {
  pkg::Repository repo;
  auto add = [&repo](pkg::Package package) {
    Status status = repo.add(std::move(package));
    COMT_ASSERT(status.ok(), "duplicate package while building distro repo");
  };
  add(make_gcc_package(arch));
  add(make_build_essential(arch));
  add(make_llvm_package(arch));
  add(make_mpi_package(arch, pkg::Variant::generic, ""));
  for (const LibraryRow& row : library_rows()) {
    add(make_library_package(row, arch, pkg::Variant::generic));
  }
  return repo;
}

pkg::Repository make_system_repo(const sysmodel::SystemProfile& system) {
  pkg::Repository repo;
  auto add = [&repo](pkg::Package package) {
    Status status = repo.add(std::move(package));
    COMT_ASSERT(status.ok(), "duplicate package while building system repo");
  };
  std::string_view fabric = system.arch == "arm64" ? "glex" : "hsn";
  add(make_gcc_package(system.arch));
  add(make_build_essential(system.arch));
  add(make_llvm_package(system.arch));
  add(make_vendor_toolchain(system));
  add(make_mpi_package(system.arch, pkg::Variant::optimized, fabric));
  for (const LibraryRow& row : library_rows()) {
    add(make_library_package(row, system.arch, pkg::Variant::optimized));
  }
  return repo;
}

/// The raw distro base tree: a handful of large files standing in for the
/// distro's userland, sized so that ubuntu:24.04 images land at Table 3's
/// base sizes (~165 sim-MiB on x86-64, ~90 on AArch64).
vfs::Filesystem make_distro_tree(std::string_view arch) {
  const bool arm = arch == "arm64";
  vfs::Filesystem fs;
  auto put = [&fs](std::string path, double mib, std::string_view seed) {
    Status status = fs.write_file(path, filler(mib, seed));
    COMT_ASSERT(status.ok(), "distro tree write failed");
  };
  put("/usr/lib/locale-archive", arm ? 38.0 : 75.0, "locale");
  put("/usr/lib/libc.so", arm ? 12.0 : 16.0, "libc");
  put("/usr/lib/libstdc++.so", arm ? 9.0 : 12.0, "libstdc++");
  put("/usr/bin/coreutils", arm ? 12.0 : 22.0, "coreutils");
  put("/usr/bin/bash", arm ? 5.0 : 7.5, "bash");
  put("/usr/share/doc/notes", arm ? 8.0 : 22.0, "docs");
  put("/etc/os-release", 0.01, "os-release");
  put("/etc/passwd", 0.01, "passwd");
  Status status = fs.make_directories("/tmp");
  COMT_ASSERT(status.ok(), "mkdir /tmp failed");
  status = fs.make_directories("/root");
  COMT_ASSERT(status.ok(), "mkdir /root failed");
  return fs;
}

oci::ImageConfig make_config(std::string_view arch) {
  oci::ImageConfig config;
  config.architecture = std::string(arch);
  config.os = "linux";
  config.config.env = {"PATH=/usr/local/bin:/usr/bin:/bin"};
  config.config.working_dir = "/";
  return config;
}

/// Installs packages into a tree, producing the dpkg database files too.
Status preinstall(vfs::Filesystem& fs, const pkg::Repository& repo,
                  const std::vector<std::string>& names) {
  COMT_TRY(pkg::Database db, pkg::Database::load(fs));
  COMT_TRY(auto plan, pkg::resolve(repo, names, db.installed_names()));
  for (const pkg::Package* package : plan) {
    if (db.installed(package->name)) continue;
    COMT_TRY_STATUS(db.install(fs, *package));
  }
  return Status::success();
}

}  // namespace

std::string filler(double mib, std::string_view seed) {
  if (mib <= 0) return "";
  auto bytes = static_cast<std::size_t>(mib * static_cast<double>(kSimBytesPerMiB));
  std::string unit = "//" + std::string(seed) + "-payload//\n";
  std::string out;
  out.reserve(bytes + unit.size());
  while (out.size() < bytes) out += unit;
  out.resize(bytes);
  return out;
}

double to_sim_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kSimBytesPerMiB);
}

const pkg::Repository& ubuntu_repo(std::string_view arch) {
  static const pkg::Repository amd64 = make_ubuntu_repo("amd64");
  static const pkg::Repository arm64 = make_ubuntu_repo("arm64");
  return arch == "arm64" ? arm64 : amd64;
}

const pkg::Repository& system_repo(const sysmodel::SystemProfile& system) {
  static const pkg::Repository x86 = make_system_repo(sysmodel::SystemProfile::x86_cluster());
  static const pkg::Repository arm =
      make_system_repo(sysmodel::SystemProfile::aarch64_cluster());
  return system.arch == "arm64" ? arm : x86;
}

std::string ubuntu_tag(std::string_view arch) {
  return "ubuntu:24.04-" + std::string(arch);
}
std::string env_tag(std::string_view arch) { return "comt/env:" + std::string(arch); }
std::string base_tag(std::string_view arch) { return "comt/base:" + std::string(arch); }
std::string sysenv_tag(const sysmodel::SystemProfile& system) {
  return "comt/sysenv:" + system.arch;
}
std::string rebase_tag(const sysmodel::SystemProfile& system) {
  return "comt/rebase:" + system.arch;
}

Status install_user_images(oci::Layout& layout, std::string_view arch) {
  // ubuntu:24.04 — the mainstream base.
  vfs::Filesystem distro = make_distro_tree(arch);
  oci::ImageConfig config = make_config(arch);
  config.history = {"ubuntu base"};
  auto ubuntu = layout.create_image(config, {distro}, ubuntu_tag(arch));
  if (!ubuntu.ok()) return ubuntu.error();

  // comt/env — ubuntu + build toolchain + the coMtainer toolset, hijack on.
  vfs::Filesystem env_tree = distro;
  COMT_TRY_STATUS(preinstall(env_tree, ubuntu_repo(arch), {"build-essential", "clang"}));
  COMT_TRY_STATUS(env_tree.write_file("/.coMtainer/bin/coMtainer-build",
                                      "#!comt-toolset build\n", 0755));
  oci::ImageConfig env_config = make_config(arch);
  env_config.config.labels[std::string(buildexec::kHijackLabel)] = "true";
  env_config.history = {"coMtainer Env image"};
  auto env = layout.create_image(env_config, {env_tree}, env_tag(arch));
  if (!env.ok()) return env.error();

  // comt/base — ubuntu-compatible runtime base, hijack on so dist-stage COPY
  // movements are recorded too (both stages use coMtainer images; Fig. 5/6).
  oci::ImageConfig base_config = make_config(arch);
  base_config.config.labels[std::string(buildexec::kHijackLabel)] = "true";
  base_config.history = {"coMtainer Base image"};
  auto base = layout.create_image(base_config, {distro}, base_tag(arch));
  if (!base.ok()) return base.error();
  return Status::success();
}

Status install_system_images(oci::Layout& layout, const sysmodel::SystemProfile& system) {
  const pkg::Repository& repo = system_repo(system);

  // comt/sysenv — the system-side rebuild environment: distro base plus the
  // generic toolchain (so un-adapted rebuilds stay generic), the vendor
  // toolchain under /opt/system, and the optimized library stack.
  vfs::Filesystem sysenv_tree = make_distro_tree(system.arch);
  std::vector<std::string> stack = {"build-essential", "clang", "system-toolchain",
                                    "mpich"};
  for (const LibraryRow& row : library_rows()) stack.emplace_back(row.name);
  COMT_TRY_STATUS(preinstall(sysenv_tree, repo, stack));
  COMT_TRY_STATUS(sysenv_tree.write_file("/.coMtainer/bin/coMtainer-rebuild",
                                         "#!comt-toolset rebuild\n", 0755));
  oci::ImageConfig sysenv_config = make_config(system.arch);
  sysenv_config.history = {"coMtainer Sysenv image for " + system.name};
  auto sysenv = layout.create_image(sysenv_config, {sysenv_tree}, sysenv_tag(system));
  if (!sysenv.ok()) return sysenv.error();

  // comt/rebase — the system-side runtime base the redirect container grows
  // from; runtime deps are installed into it from the system repo.
  vfs::Filesystem rebase_tree = make_distro_tree(system.arch);
  COMT_TRY_STATUS(rebase_tree.write_file("/.coMtainer/bin/coMtainer-redirect",
                                         "#!comt-toolset redirect\n", 0755));
  oci::ImageConfig rebase_config = make_config(system.arch);
  rebase_config.history = {"coMtainer Rebase image for " + system.name};
  auto rebase = layout.create_image(rebase_config, {rebase_tree}, rebase_tag(system));
  if (!rebase.ok()) return rebase.error();
  return Status::success();
}

}  // namespace comt::workloads
