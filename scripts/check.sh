#!/usr/bin/env bash
# CI entry point: configure, build, run the full test suite, then smoke-test
# the parallel-rebuild, rebuild-service, and rebuild-fleet benchmarks (which assert that
# parallel rebuilds are bit-identical, a warm compile cache hits 100%,
# duplicate service requests coalesce, and injected faults recover via
# retry). The parallel-rebuild smoke runs with tracing enabled and fails if
# the exported Chrome trace is malformed, missing compile-job spans, or the
# tracing overhead clears the 5% bar (2 ms absolute floor); on a host with
# >= 4 hardware threads it also sweeps 4 threads and fails when the 4-thread
# speedup drops below 1.0x (on smaller hosts the bench prints a SKIP notice
# instead — see docs/PERFORMANCE.md). The overload soak smoke gates the
# robustness SLOs: tenant fairness under a hot-tenant flood, zero lost
# tickets, circuit-breaker recovery, and autoscaler convergence. A second build
# under ThreadSanitizer reruns the concurrency layer
# (scheduler — including the SchedStress lock-free deque/cache/epoch tests —
# registry, rebuild service, obs tracing/metrics) and the
# service + soak smoke benches. A third
# build under AddressSanitizer reruns the durability layer (write-ahead
# journal, crash/torn-write injection, fsck/repair) plus the crash-resume
# smoke bench — crash paths unwind through partially written state, exactly
# where ASAN finds lifetime bugs.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
#   COMT_SKIP_TSAN=1   skip the ThreadSanitizer stage.
#   COMT_SKIP_ASAN=1   skip the AddressSanitizer stage.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== configure =="
cmake -B "$build_dir" -S "$repo"

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== bench smoke (tracing enabled) =="
# The bench itself validates the exported trace: it must re-parse through
# src/json, hold one "job:*" span per compile job, and every job span must
# nest under the root "rebuild" span — any violation is a non-zero exit.
"$build_dir/bench/parallel_rebuild" --smoke --trace "$build_dir/rebuild_trace.json"
test -s "$build_dir/rebuild_trace.json"
"$build_dir/bench/service_throughput" --smoke
"$build_dir/bench/crash_resume" --smoke
# Fleet smoke: duplicate submissions across replicas must dedup to one lease
# per distinct build, cross-replica reuse and shared-store cache hits must be
# nonzero, injected remote faults must actually fire, and no ticket may fail.
"$build_dir/bench/fleet_rebuild" --smoke
# Overload soak smoke, SLO-gated: quiet-tenant p99 queue wait must stay within
# 3x its solo baseline under a 10x hot-tenant flood, every ticket must reach a
# terminal state (zero lost, zero failed despite the flaky network), the
# breaker must trip and recover through half-open, and the autoscaler must
# converge back to min workers. On 1-hardware-thread hosts the bench
# auto-skips its heavy rows and records that provenance in the JSON.
"$build_dir/bench/soak" --smoke
# Distribution smoke: delta-pushing each optimized image against its generic
# parent must move < 40% of full-image bytes at a chunk dedup ratio > 2.5x
# (the CI floor is > 1.0), and a torn chunk upload must be detected as
# corrupt — never reassembled silently wrong — and heal bit-identical.
"$build_dir/bench/table3_image_size" --smoke

echo "== restart-persistence smoke =="
# Crash a rebuild whose journal and compile cache persist into one DiskStore
# directory, then resume with brand-new objects over the same directory: must
# replay the journal, serve a warm cache hit, and stay bit-identical.
"$build_dir/bench/crash_resume" --restart-smoke "$build_dir/restart-smoke-store"

if [ "${COMT_SKIP_TSAN:-0}" != "1" ]; then
  tsan_dir="${build_dir}-tsan"
  echo "== tsan build =="
  cmake -B "$tsan_dir" -S "$repo" -DCOMT_SANITIZE=thread
  cmake --build "$tsan_dir" -j "$jobs"

  echo "== tsan test (concurrency layer) =="
  ctest --test-dir "$tsan_dir" --output-on-failure -j "$jobs" \
        -R 'Sched|SchedStress|ThreadPool|Dag|CompileCache|RegistryStress|Service|FaultInjector|Obs|Store|Fleet|Transfer'

  echo "== tsan bench smoke =="
  "$tsan_dir/bench/service_throughput" --smoke
  # The soak under TSAN: weighted-fair queues, token buckets, the autoscaler's
  # resize path, and the breaker state machine all race for real here.
  "$tsan_dir/bench/soak" --smoke
fi

if [ "${COMT_SKIP_ASAN:-0}" != "1" ]; then
  asan_dir="${build_dir}-asan"
  echo "== asan build =="
  cmake -B "$asan_dir" -S "$repo" -DCOMT_SANITIZE=address
  cmake --build "$asan_dir" -j "$jobs"

  echo "== asan test (durability layer) =="
  ctest --test-dir "$asan_dir" --output-on-failure -j "$jobs" \
        -R 'Journal|Durable|Fsck|CrashResume|ServiceCrashRecovery|FaultInjector|LayoutPin|RegistryPin|Store|Transfer'

  echo "== asan bench smoke =="
  "$asan_dir/bench/crash_resume" --smoke
fi

echo "check.sh: all green"
