#include "sched/compile_cache.hpp"

#include <optional>

#include "store/wire.hpp"
#include "support/sha256.hpp"

namespace comt::sched {
namespace {

namespace wire = comt::store::wire;

void append_field(std::string& buffer, const std::string& field) {
  buffer += std::to_string(field.size());
  buffer += ':';
  buffer += field;
}

/// Persisted entry layout: [u32 n_inputs] n×(str path, str digest)
/// [u32 n_outputs] n×(str path, str content, u32 mode), followed by the
/// 64-hex-char sha256 of everything before it. The trailer makes corruption
/// detectable end-to-end even on a backing store without its own framing —
/// a damaged entry must degrade to a miss, never replay wrong outputs.
constexpr std::size_t kEntryTrailerSize = 64;

std::string serialize_entry(const CacheEntry& entry) {
  std::string out;
  wire::put_u32(out, static_cast<std::uint32_t>(entry.input_digests.size()));
  for (const auto& [path, digest] : entry.input_digests) {
    wire::put_str(out, path);
    wire::put_str(out, digest);
  }
  wire::put_u32(out, static_cast<std::uint32_t>(entry.outputs.size()));
  for (const CachedOutput& output : entry.outputs) {
    wire::put_str(out, output.path);
    wire::put_str(out, output.content);
    wire::put_u32(out, output.mode);
  }
  out += Sha256::hex_digest(out);
  return out;
}

std::optional<CacheEntry> deserialize_entry(std::string_view encoded) {
  if (encoded.size() < kEntryTrailerSize) return std::nullopt;
  const std::string_view payload = encoded.substr(0, encoded.size() - kEntryTrailerSize);
  const std::string_view trailer = encoded.substr(encoded.size() - kEntryTrailerSize);
  if (Sha256::hex_digest(payload) != trailer) return std::nullopt;
  wire::Reader reader{payload};
  CacheEntry entry;
  const std::uint32_t inputs = reader.u32();
  for (std::uint32_t i = 0; i < inputs && reader.ok; ++i) {
    std::string path = reader.str();
    std::string digest = reader.str();
    entry.input_digests.emplace(std::move(path), std::move(digest));
  }
  const std::uint32_t outputs = reader.u32();
  for (std::uint32_t i = 0; i < outputs && reader.ok; ++i) {
    CachedOutput output;
    output.path = reader.str();
    output.content = reader.str();
    output.mode = reader.u32();
    entry.outputs.push_back(std::move(output));
  }
  if (!reader.ok || !reader.at_end()) return std::nullopt;
  return entry;
}

}  // namespace

std::string CacheKey::digest() const {
  std::string buffer;
  append_field(buffer, toolchain_id);
  append_field(buffer, target_arch);
  append_field(buffer, cwd);
  buffer += std::to_string(argv.size());
  buffer += ';';
  for (const std::string& arg : argv) append_field(buffer, arg);
  return Sha256::hex_digest(buffer);
}

std::shared_ptr<const CacheEntry> CompileCache::lookup(const std::string& key_digest,
                                                       const DigestFn& digest_of) {
  std::shared_ptr<const CacheEntry> candidate;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = entries_.find(key_digest);
    if (found != entries_.end()) candidate = found->second;
  }
  // Verify the input manifest outside the lock: digest_of may do real work.
  if (candidate) {
    for (const auto& [path, digest] : candidate->input_digests) {
      if (digest_of(path) != digest) {
        candidate = nullptr;
        break;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (candidate) {
    ++stats_.hits;
    if (hits_ != nullptr) hits_->add();
  } else {
    ++stats_.misses;
    if (misses_ != nullptr) misses_->add();
  }
  return candidate;
}

void CompileCache::store(const std::string& key_digest, CacheEntry entry) {
  auto shared = std::make_shared<const CacheEntry>(std::move(entry));
  std::shared_ptr<store::KvStore> backing;
  std::string backing_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key_digest] = shared;
    ++stats_.stores;
    if (inserts_ != nullptr) inserts_->add();
    backing = backing_;
    backing_key = prefix_ + key_digest;
  }
  // Write through outside the lock: serialization copies the (possibly
  // large) outputs and the backing put may hit a real disk. Best effort — a
  // failed put only costs the next process a cache miss.
  if (backing != nullptr) (void)backing->put(backing_key, serialize_entry(*shared));
}

std::size_t CompileCache::attach(std::shared_ptr<store::KvStore> backing,
                                 std::string prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  backing_ = std::move(backing);
  prefix_ = std::move(prefix);
  if (backing_ == nullptr) return 0;
  std::size_t recovered = 0;
  for (const store::KvEntry& persisted : backing_->list(prefix_)) {
    const std::string key = persisted.key.substr(prefix_.size());
    auto value = backing_->get(persisted.key);
    std::optional<CacheEntry> entry;
    if (value.ok()) entry = deserialize_entry(value.value());
    if (!entry.has_value()) {
      // Torn, bit-flipped, or truncated on disk: erase it so the next
      // attach does not re-trip, and degrade to a miss.
      (void)backing_->erase(persisted.key);
      ++stats_.corrupt_dropped;
      if (corrupt_dropped_ != nullptr) corrupt_dropped_->add();
      continue;
    }
    entries_[key] = std::make_shared<const CacheEntry>(std::move(*entry));
    ++stats_.hydrated;
    if (hydrated_ != nullptr) hydrated_->add();
    ++recovered;
  }
  return recovered;
}

void CompileCache::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (metrics == nullptr) {
    hits_ = misses_ = inserts_ = hydrated_ = corrupt_dropped_ = nullptr;
    return;
  }
  hits_ = &metrics->counter("compile_cache.hits");
  misses_ = &metrics->counter("compile_cache.misses");
  inserts_ = &metrics->counter("compile_cache.inserts");
  hydrated_ = &metrics->counter("compile_cache.hydrated");
  corrupt_dropped_ = &metrics->counter("compile_cache.corrupt_dropped");
}

CacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompileCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace comt::sched
