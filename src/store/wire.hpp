// Little-endian wire codec shared by every framed byte format in the tree:
// the write-ahead journal's record log (durable/journal.cpp), DiskStore's
// torn-write detection frame, and the compile cache's serialized entries.
// One codec means one set of framing conventions — a u32 length prefix, a
// fnv1a64 checksum, length-prefixed strings — instead of three private ones.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace comt::store::wire {

/// FNV-1a 64-bit. Fast, good dispersion; torn/corrupt framing detection, not
/// content addressing (that is SHA-256's job).
inline std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

inline void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

inline void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

/// str := [u32 size][bytes]
inline void put_str(std::string& out, std::string_view value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

/// Bounds-checked forward reader over a payload; any short read trips `ok`
/// and every later read returns a zero value.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > data.size()) return fail<std::uint8_t>();
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t u32() {
    if (pos + 4 > data.size()) return fail<std::uint32_t>();
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
    }
    pos += 4;
    return value;
  }
  std::uint64_t u64() {
    if (pos + 8 > data.size()) return fail<std::uint64_t>();
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
    }
    pos += 8;
    return value;
  }
  std::string str() {
    std::uint32_t size = u32();
    if (!ok || pos + size > data.size()) return fail<std::string>();
    std::string value(data.substr(pos, size));
    pos += size;
    return value;
  }
  bool at_end() const { return pos == data.size(); }

  template <typename T>
  T fail() {
    ok = false;
    return T{};
  }
};

}  // namespace comt::store::wire
