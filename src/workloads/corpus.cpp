#include "workloads/corpus.hpp"

#include <map>

#include "support/strings.hpp"

namespace comt::workloads {
namespace {

using toolchain::KernelTrait;
using toolchain::SourceGenSpec;

/// Compact kernel constructor. Fractions: vec/mem/call/branch plus a library
/// share; the remainder is scalar compute. `aggr`, `lto`, `pgo` are the
/// responses of DESIGN.md §5 (negative values model the paper's regressions).
KernelTrait K(std::string name, double work, double vec, double mem, double call,
              double branch, std::string lib, double flib, double comm, double aggr,
              double lto, double pgo) {
  KernelTrait kernel;
  kernel.name = std::move(name);
  kernel.work = work;
  kernel.frac_vec = vec;
  kernel.frac_mem = mem;
  kernel.frac_call = call;
  kernel.frac_branch = branch;
  kernel.lib = std::move(lib);
  kernel.frac_lib = flib;
  kernel.frac_comm = comm;
  kernel.aggr_response = aggr;
  kernel.lto_response = lto;
  kernel.pgo_response = pgo;
  return kernel;
}

SourceGenSpec U(std::string unit, std::vector<KernelTrait> kernels, int filler_lines,
                std::vector<std::string> includes = {"common.h"}) {
  SourceGenSpec spec;
  spec.unit_name = std::move(unit);
  spec.kernels = std::move(kernels);
  spec.includes = std::move(includes);
  spec.uses_mpi = true;
  spec.filler_lines = filler_lines;
  return spec;
}

WorkloadInput In(std::string name, double scale,
                 std::map<std::string, double> weights = {}) {
  WorkloadInput input;
  input.name = std::move(name);
  input.input_scale = scale;
  input.kernel_weight = std::move(weights);
  return input;
}

std::vector<AppSpec> make_corpus() {
  std::vector<AppSpec> apps;

  // ---- HPL: dense LU; almost all time inside BLAS. -------------------------
  {
    AppSpec app;
    app.name = "hpl";
    app.paper_loc = 37556;
    app.build_packages = {"build-essential", "libblas", "mpich"};
    app.runtime_packages = {"libblas", "mpich"};
    app.link_libraries = {"m", "blas"};
    app.isa_locked = true;  // hand-tuned assembly panels in the real code
    app.units = {
        U("hpl_main",
          {K("lu_factor", 260, 0.15, 0.12, 0.03, 0.04, "blas", 0.58, 0.04, 0.05, 0.15, 0.10)},
          90, {"common.h", "arch_tune.h"}),
        U("hpl_panel", {K("panel_bcast", 100, 0.10, 0.20, 0.05, 0.05, "blas", 0.40, 0.10, 0.05, 0.10, 0.08)},
          70),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- HPCG: memory-bound SpMV/MG; PGO mispredicts its irregular loops. ----
  {
    AppSpec app;
    app.name = "hpcg";
    app.paper_loc = 5529;
    app.build_packages = {"build-essential", "libm", "mpich"};
    app.runtime_packages = {"libm", "mpich"};
    app.link_libraries = {"m"};
    app.extra_cflags = {"-DUSE_SSE2_STREAMS"};
    app.units = {
        U("hpcg_main", {K("spmv", 200, 0.16, 0.44, 0.04, 0.24, "m", 0.04, 0.06, 0.04, 0.08, -0.65)}, 60),
        U("hpcg_mg", {K("mg_smooth", 90, 0.12, 0.55, 0.05, 0.12, "", 0, 0.05, 0.04, 0.10, -0.30)}, 45),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- LULESH: hydro mini-app; communication-heavy at scale. ---------------
  {
    AppSpec app;
    app.name = "lulesh";
    app.paper_loc = 5546;
    app.build_packages = {"build-essential", "libm", "mpich"};
    app.runtime_packages = {"libm", "mpich"};
    app.link_libraries = {"m"};
    app.extra_cflags = {"-mavx2"};
    app.units = {
        U("lulesh_main", {K("hydro", 160, 0.34, 0.10, 0.08, 0.07, "m", 0.18, 0.80, 0.08, 0.85, 0.60)}, 55),
        U("lulesh_force", {K("calc_force", 90, 0.38, 0.10, 0.09, 0.06, "m", 0.12, 0.85, 0.08, 0.80, 0.55)}, 45),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- CoMD: molecular dynamics mini-app; vectorizes well, inlines well. ---
  {
    AppSpec app;
    app.name = "comd";
    app.paper_loc = 4668;
    app.build_packages = {"build-essential", "libm", "mpich"};
    app.runtime_packages = {"libm", "mpich"};
    app.link_libraries = {"m"};
    app.extra_cflags = {"-mavx2", "-mfma"};
    app.units = {
        U("comd_main", {K("force_ljpot", 140, 0.46, 0.12, 0.12, 0.10, "m", 0.08, 0.03, 0.10, 0.50, 0.30)}, 45),
        U("comd_neighbors", {K("halo_exchange", 60, 0.20, 0.30, 0.10, 0.08, "", 0, 0.10, 0.06, 0.30, 0.15)}, 35),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- HPCCG: the paper's outlier — aggressive vendor codegen backfires. ---
  {
    AppSpec app;
    app.name = "hpccg";
    app.paper_loc = 1563;
    app.build_packages = {"build-essential", "libm", "mpich"};
    app.runtime_packages = {"libm", "mpich"};
    app.link_libraries = {"m"};
    app.units = {
        U("hpccg_main", {K("cg_iter", 110, 0.06, 0.46, 0.05, 0.06, "m", 0.04, 0.04, -0.70, 0.08, 0.05)}, 40),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- miniAero: unstructured CFD; call-heavy, big LTO win. ----------------
  {
    AppSpec app;
    app.name = "miniaero";
    app.paper_loc = 42056;
    app.build_packages = {"build-essential", "libm", "mpich"};
    app.runtime_packages = {"libm", "mpich"};
    app.link_libraries = {"m"};
    app.extra_cflags = {"-msse4.2", "-mfma", "-DUSE_X86_SIMD"};
    app.use_make = true;
    app.units = {
        U("aero_main", {K("flux_eval", 150, 0.30, 0.26, 0.17, 0.06, "m", 0.05, 0.05, 0.06, 0.60, 0.20)}, 65),
        U("aero_mesh", {K("face_gradients", 80, 0.26, 0.30, 0.14, 0.08, "", 0, 0.05, 0.05, 0.55, 0.18)}, 50),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- miniAMR: adaptive refinement; branchy, prime PGO target. ------------
  {
    AppSpec app;
    app.name = "miniamr";
    app.paper_loc = 9957;
    app.build_packages = {"build-essential", "mpich"};
    app.runtime_packages = {"mpich"};
    app.link_libraries = {};
    app.units = {
        U("amr_main", {K("refine_step", 120, 0.12, 0.32, 0.06, 0.26, "", 0, 0.05, 0.05, 0.10, 0.50)}, 55),
        U("amr_comm", {K("block_exchange", 50, 0.08, 0.30, 0.08, 0.18, "", 0, 0.16, 0.04, 0.10, 0.35)}, 40),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- miniFE: implicit FE; bandwidth-bound with a BLAS tail. ---------------
  {
    AppSpec app;
    app.name = "minife";
    app.paper_loc = 28010;
    app.build_packages = {"build-essential", "libblas", "mpich"};
    app.runtime_packages = {"libblas", "mpich"};
    app.link_libraries = {"m", "blas"};
    app.extra_cflags = {"-msse4.2"};
    app.use_make = true;
    app.units = {
        U("fe_main", {K("cg_solve", 160, 0.24, 0.44, 0.05, 0.05, "blas", 0.10, 0.06, 0.05, 0.15, 0.12)}, 60),
        U("fe_assembly", {K("assemble", 70, 0.30, 0.36, 0.08, 0.06, "", 0, 0.04, 0.06, 0.25, 0.10)}, 45),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- miniMD: like CoMD but leaner; very SIMD-friendly. --------------------
  {
    AppSpec app;
    app.name = "minimd";
    app.paper_loc = 4404;
    app.build_packages = {"build-essential", "libm", "mpich"};
    app.runtime_packages = {"libm", "mpich"};
    app.link_libraries = {"m"};
    app.extra_cflags = {"-msse4.2"};
    app.units = {
        U("md_main", {K("lj_force", 120, 0.52, 0.14, 0.08, 0.08, "m", 0.05, 0.03, 0.15, 0.35, 0.25)}, 45),
    };
    app.inputs = {In("", 1.0)};
    apps.push_back(std::move(app));
  }

  // ---- LAMMPS: five inputs emphasizing different pair styles. ---------------
  {
    AppSpec app;
    app.name = "lammps";
    app.paper_loc = 2273423;
    app.build_packages = {"build-essential", "libm", "libblas", "libfftw", "libjpeg", "mpich"};
    app.runtime_packages = {"libm", "libblas", "libfftw", "libjpeg", "mpich"};
    app.link_libraries = {"m", "blas", "fftw", "jpeg"};
    app.isa_locked = true;  // INTEL/KOKKOS-style ISA packages
    app.units = {
        U("lmp_main", {K("neighbor_build", 70, 0.28, 0.32, 0.10, 0.08, "", 0, 0.05, 0.08, 0.30, 0.15)},
          260, {"common.h", "arch_tune.h"}),
        U("lmp_pair_lj", {K("pair_lj", 90, 0.54, 0.10, 0.10, 0.18, "m", 0.04, 0.03, 0.12, 0.35, 0.70)}, 240),
        U("lmp_bond_chain", {K("bond_chain", 80, 0.14, 0.18, 0.18, 0.32, "", 0, 0.04, 0.06, -0.15, -0.45)}, 230),
        U("lmp_pair_eam", {K("pair_eam", 100, 0.74, 0.06, 0.04, 0.04, "m", 0.05, 0.03, 0.30, 0.40, 0.20)}, 230),
        U("lmp_kspace", {K("kspace_fft", 80, 0.20, 0.14, 0.05, 0.05, "fftw", 0.42, 0.10, 0.08, 0.20, 0.10)}, 220),
        U("lmp_granular", {K("granular_chute", 80, 0.16, 0.50, 0.08, 0.12, "", 0, 0.05, 0.06, 0.15, 0.25)}, 210),
    };
    app.inputs = {
        In("chain", 1.0, {{"bond_chain", 3.0}, {"neighbor_build", 0.5}, {"pair_lj", 0.2},
                          {"pair_eam", 0.1}, {"kspace_fft", 0.1}, {"granular_chute", 0.1}}),
        In("chute", 0.9, {{"granular_chute", 3.2}, {"neighbor_build", 0.5}, {"bond_chain", 0.2},
                          {"pair_lj", 0.2}, {"pair_eam", 0.1}, {"kspace_fft", 0.1}}),
        In("eam", 1.1, {{"pair_eam", 3.6}, {"neighbor_build", 0.15}, {"pair_lj", 0.2},
                        {"bond_chain", 0.05}, {"kspace_fft", 0.05}, {"granular_chute", 0.05}}),
        In("lj", 1.0, {{"pair_lj", 3.2}, {"neighbor_build", 0.5}, {"pair_eam", 0.2},
                       {"bond_chain", 0.1}, {"kspace_fft", 0.1}, {"granular_chute", 0.1}}),
        In("rhodo", 1.3, {{"kspace_fft", 2.8}, {"neighbor_build", 0.6}, {"pair_lj", 0.8},
                          {"bond_chain", 0.4}, {"pair_eam", 0.1}, {"granular_chute", 0.1}}),
    };
    apps.push_back(std::move(app));
  }

  // ---- OpenMX: DFT; dominated by vendor math libraries. ---------------------
  {
    AppSpec app;
    app.name = "openmx";
    app.paper_loc = 287381;
    app.build_packages = {"build-essential", "libm", "libblas", "liblapack",
                          "libscalapack", "libelpa", "libxc", "mpich"};
    app.runtime_packages = {"libm", "libblas", "liblapack", "libscalapack",
                            "libelpa", "libxc", "mpich"};
    app.link_libraries = {"m", "blas", "lapack", "scalapack", "elpa", "xc"};
    app.isa_locked = true;
    app.units = {
        U("omx_main", {K("dft_scf", 140, 0.14, 0.10, 0.05, 0.05, "scalapack", 0.60, 0.08, 0.06, 0.20, 0.10)},
          500, {"common.h", "arch_tune.h"}),
        U("omx_exchange", {K("exchange_corr", 90, 0.18, 0.22, 0.06, 0.06, "xc", 0.44, 0.05, 0.06, 0.20, 0.12)}, 450),
        U("omx_diag", {K("diag_pt13", 100, 0.08, 0.08, 0.20, 0.38, "elpa", 0.12, 0.05, 0.04, 0.50, 0.85)}, 430),
        U("omx_force", {K("force_calc", 80, 0.30, 0.16, 0.06, 0.06, "elpa", 0.36, 0.06, 0.10, 0.30, 0.15)}, 420),
        U("omx_io", {K("io_pack", 30, 0.06, 0.50, 0.06, 0.10, "", 0, 0.10, 0.02, 0.05, 0.10)}, 380),
    };
    app.inputs = {
        In("awf5e", 1.0, {{"dft_scf", 2.0}, {"exchange_corr", 1.0}, {"diag_pt13", 0.2},
                          {"force_calc", 1.0}, {"io_pack", 1.0}}),
        In("awf7e", 1.5, {{"dft_scf", 2.6}, {"exchange_corr", 1.3}, {"diag_pt13", 0.3},
                          {"force_calc", 1.2}, {"io_pack", 1.0}}),
        In("nitro", 0.8, {{"exchange_corr", 2.4}, {"force_calc", 1.8}, {"dft_scf", 0.8},
                          {"diag_pt13", 0.2}, {"io_pack", 1.0}}),
        In("pt13", 1.2, {{"diag_pt13", 3.0}, {"dft_scf", 1.0}, {"exchange_corr", 0.4},
                         {"force_calc", 0.5}, {"io_pack", 0.5}}),
    };
    apps.push_back(std::move(app));
  }

  return apps;
}

std::string isa_of(std::string_view arch) {
  return arch == "arm64" ? "aarch64" : "x86_64";
}

}  // namespace

std::string WorkloadInput::display_name(std::string_view app) const {
  return name.empty() ? std::string(app) : std::string(app) + "." + name;
}

sysmodel::RunRequest WorkloadInput::run_request(int nodes) const {
  sysmodel::RunRequest request;
  request.nodes = nodes;
  request.input_scale = input_scale;
  request.kernel_weight = kernel_weight;
  return request;
}

int AppSpec::corpus_loc() const {
  int total = 0;
  for (const toolchain::SourceGenSpec& unit : units) {
    std::string text = toolchain::generate_source(unit);
    total += static_cast<int>(split(text, '\n').size());
  }
  return total;
}

const std::vector<AppSpec>& corpus() {
  static const std::vector<AppSpec> apps = make_corpus();
  return apps;
}

const AppSpec* find_app(std::string_view name) {
  for (const AppSpec& app : corpus()) {
    if (app.name == name) return &app;
  }
  return nullptr;
}

vfs::Filesystem build_context(const AppSpec& app) {
  vfs::Filesystem context;
  Status status = context.write_file("/src/common.h", "// " + app.name + " common decls\n");
  COMT_ASSERT(status.ok(), "context write failed");
  for (const toolchain::SourceGenSpec& unit : app.units) {
    status = context.write_file("/src/" + unit.unit_name + ".cc",
                                toolchain::generate_source(unit));
    COMT_ASSERT(status.ok(), "context write failed");
  }
  if (app.use_make) {
    status = context.write_file("/Makefile", makefile_text(app));
    COMT_ASSERT(status.ok(), "context write failed");
  }
  return context;
}

std::string makefile_text(const AppSpec& app) {
  std::string out;
  out += "CC = gcc\n";
  out += "MPICC = mpicc\n";
  out += "CFLAGS = -O2\n";
  std::string objects;
  for (const toolchain::SourceGenSpec& unit : app.units) {
    objects += (objects.empty() ? "" : " ") + unit.unit_name + ".o";
  }
  out += "OBJS = " + objects + "\n";
  std::string libs;
  for (const std::string& lib : app.link_libraries) libs += " -l" + lib;
  out += "\n" + app.name + ": $(OBJS)\n";
  out += "\t$(MPICC) $(CFLAGS) $(OBJS) -o " + app.name + libs + "\n";
  for (const toolchain::SourceGenSpec& unit : app.units) {
    out += "\n" + unit.unit_name + ".o: src/" + unit.unit_name + ".cc src/common.h\n";
    out += "\t$(CC) $(CFLAGS) -c src/" + unit.unit_name + ".cc -o " + unit.unit_name +
           ".o\n";
  }
  return out;
}

std::string dockerfile_text(const AppSpec& app, std::string_view arch, bool comt_bases) {
  std::string build_base = comt_bases ? ("comt/env:" + std::string(arch))
                                      : ("ubuntu:24.04-" + std::string(arch));
  std::string dist_base = comt_bases ? ("comt/base:" + std::string(arch))
                                     : ("ubuntu:24.04-" + std::string(arch));
  std::string cflags_extra;
  if (arch == "amd64") {
    for (const std::string& flag : app.extra_cflags) cflags_extra += " " + flag;
  }

  std::string out;
  out += "FROM " + build_base + " AS build\n";
  out += "ARG CFLAGS=-O2\n";
  out += "WORKDIR /work\n";
  out += "RUN apt-get update && apt-get install -y " + join(app.build_packages, " ") + "\n";
  out += "COPY src /work/src\n";
  if (app.isa_locked) {
    out += "RUN echo '// @comt-isa " + isa_of(arch) + "' > src/arch_tune.h\n";
  }
  if (app.use_make) {
    // Make-driven build: one RUN line, the build system fans out to the
    // per-unit compiles (which the hijacker records individually).
    out += "COPY Makefile /work/Makefile\n";
    out += "RUN make " + app.name + " \"CFLAGS=$CFLAGS" + cflags_extra + "\"\n";
    out += "FROM " + dist_base + " AS dist\n";
    out += "RUN apt-get update && apt-get install -y " +
           join(app.runtime_packages, " ") + "\n";
    out += "WORKDIR /app\n";
    out += "COPY --from=build /work/" + app.name + " /app/" + app.name + "\n";
    out += "ENTRYPOINT [\"/app/" + app.name + "\"]\n";
    return out;
  }
  std::vector<std::string> objects;
  for (const toolchain::SourceGenSpec& unit : app.units) {
    out += "RUN gcc $CFLAGS" + cflags_extra + " -c src/" + unit.unit_name + ".cc -o " +
           unit.unit_name + ".o\n";
    objects.push_back(unit.unit_name + ".o");
  }
  std::string link_inputs = objects[0];
  if (objects.size() > 2) {
    // Inner units go through a static convenience archive, like real apps.
    std::vector<std::string> members(objects.begin() + 1, objects.end());
    out += "RUN ar rcs lib" + app.name + "core.a " + join(members, " ") + "\n";
    link_inputs += " lib" + app.name + "core.a";
  } else if (objects.size() == 2) {
    link_inputs += " " + objects[1];
  }
  std::string libs;
  for (const std::string& lib : app.link_libraries) libs += " -l" + lib;
  out += "RUN mpicc $CFLAGS" + cflags_extra + " " + link_inputs + " -o " + app.name +
         libs + "\n";
  out += "FROM " + dist_base + " AS dist\n";
  out += "RUN apt-get update && apt-get install -y " + join(app.runtime_packages, " ") +
         "\n";
  out += "WORKDIR /app\n";
  out += "COPY --from=build /work/" + app.name + " /app/" + app.name + "\n";
  out += "ENTRYPOINT [\"/app/" + app.name + "\"]\n";
  return out;
}

std::string dockerfile_cross_comt(const AppSpec& app, std::string_view arch) {
  // The paper's finding: with coMtainer, crossing ISAs needs only a handful
  // of build-script line changes — drop the ISA-specific flags and the
  // arch-detection line; everything else (toolchain, sysroot, libraries) is
  // the target system's problem, solved by the rebuild.
  AppSpec portable = app;
  portable.extra_cflags.clear();
  portable.isa_locked = false;
  return dockerfile_text(portable, arch, /*comt_bases=*/true);
}

std::string dockerfile_xbuild(const AppSpec& app, std::string_view host_arch,
                              std::string_view target_arch) {
  std::string triplet =
      target_arch == "arm64" ? "aarch64-linux-gnu" : "x86_64-linux-gnu";
  std::string out;
  out += "FROM ubuntu:24.04-" + std::string(host_arch) + " AS build\n";
  out += "ARG CFLAGS=-O2\n";
  out += "ARG TARGET=" + triplet + "\n";
  out += "ARG SYSROOT=/opt/sysroots/" + triplet + "\n";
  out += "WORKDIR /work\n";
  out += "RUN apt-get update && apt-get install -y crossbuild-essential-" +
         std::string(target_arch) + " qemu-user-static debootstrap pkg-config\n";
  out += "RUN dpkg --add-architecture " + std::string(target_arch) + "\n";
  out += "RUN apt-get update\n";
  out += "ENV PKG_CONFIG_PATH=$SYSROOT/usr/lib/" + triplet + "/pkgconfig\n";
  out += "ENV PKG_CONFIG_SYSROOT_DIR=$SYSROOT\n";
  out += "ENV CC=$TARGET-gcc\n";
  out += "ENV CXX=$TARGET-g++\n";
  out += "ENV AR=$TARGET-ar\n";
  out += "ENV RANLIB=$TARGET-ranlib\n";
  out += "ENV STRIP=$TARGET-strip\n";
  out += "ENV LD_LIBRARY_PATH=$SYSROOT/usr/lib/" + triplet + "\n";
  out += "RUN mkdir -p $SYSROOT\n";
  out += "RUN debootstrap --arch=" + std::string(target_arch) +
         " --foreign noble $SYSROOT\n";
  out += "RUN cp /usr/bin/qemu-aarch64-static $SYSROOT/usr/bin/\n";
  out += "RUN chroot $SYSROOT debootstrap/debootstrap --second-stage\n";
  out += "RUN echo 'deb http://ports.ubuntu.com noble main' > "
         "$SYSROOT/etc/apt/sources.list\n";
  out += "RUN chroot $SYSROOT apt-get update\n";
  out += "RUN ln -s $SYSROOT/usr/lib/" + triplet + " /usr/lib/" + triplet + "-x\n";
  out += "RUN ln -s $SYSROOT/usr/include /usr/include/" + triplet + "-x\n";
  for (const std::string& package : app.build_packages) {
    out += "RUN chroot $SYSROOT apt-get install -y " + package + ":" +
           std::string(target_arch) + "\n";
  }
  out += "COPY src /work/src\n";
  out += "COPY cross-toolchain.cmake /work/\n";
  out += "RUN echo '// cross-config for " + triplet + "' > src/arch_tune.h\n";
  std::vector<std::string> objects;
  for (const toolchain::SourceGenSpec& unit : app.units) {
    out += "RUN $TARGET-gcc $CFLAGS --sysroot=$SYSROOT -c src/" + unit.unit_name +
           ".cc -o " + unit.unit_name + ".o\n";
    objects.push_back(unit.unit_name + ".o");
  }
  if (objects.size() > 2) {
    std::vector<std::string> members(objects.begin() + 1, objects.end());
    out += "RUN $TARGET-ar rcs lib" + app.name + "core.a " + join(members, " ") + "\n";
  }
  std::string libs;
  for (const std::string& lib : app.link_libraries) libs += " -l" + lib;
  out += "RUN $TARGET-gcc $CFLAGS --sysroot=$SYSROOT -L$SYSROOT/usr/lib/" + triplet +
         " " + objects[0] + (objects.size() > 2 ? " lib" + app.name + "core.a" : "") +
         " -o " + app.name + libs + " -lmpi\n";
  out += "RUN $TARGET-strip " + app.name + "\n";
  out += "FROM ubuntu:24.04-" + std::string(target_arch) + " AS dist\n";
  out += "RUN apt-get update && apt-get install -y " + join(app.runtime_packages, " ") +
         "\n";
  out += "WORKDIR /app\n";
  out += "COPY --from=build /work/" + app.name + " /app/" + app.name + "\n";
  out += "COPY --from=build /usr/bin/qemu-aarch64-static /usr/bin/\n";
  out += "ENTRYPOINT [\"/app/" + app.name + "\"]\n";
  return out;
}

}  // namespace comt::workloads
