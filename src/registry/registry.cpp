#include "registry/registry.hpp"

#include <mutex>
#include <set>

#include "store/disk.hpp"

namespace comt::registry {
namespace {

std::string make_reference(std::string_view name, std::string_view tag) {
  return std::string(name) + ":" + std::string(tag);
}

/// Copies one blob across layouts, counting bytes only when the destination
/// does not already hold it (content-addressed dedup, like a real registry).
Status transfer_blob(const oci::Layout& from, oci::Layout& to, const oci::Descriptor& blob,
                     std::uint64_t& transferred) {
  if (to.has_blob(blob.digest)) return Status::success();
  COMT_TRY(std::string content, from.get_blob(blob.digest));
  transferred += content.size();
  to.put_blob(std::move(content), blob.media_type);
  return Status::success();
}

}  // namespace

Status Registry::attach(std::shared_ptr<store::KvStore> backend) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  COMT_TRY_STATUS(store_.attach(std::move(backend)));
  // The store's index (just merged from the backend) is the authority; the
  // reference map is a view over it.
  references_.clear();
  for (const auto& [reference, digest] : store_.index_entries()) {
    references_[reference] = digest;
  }
  return Status::success();
}

Status Registry::open_directory(const std::string& directory) {
  return attach(std::make_shared<store::DiskStore>(
      directory, store::DiskStore::Options{/*framed=*/false}));
}

void Registry::enable_chunk_dedup(std::shared_ptr<transfer::ChunkStore> chunks) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  chunks_ = std::move(chunks);
  // Forward this registry's observer, but never clobber wiring the caller
  // already did (the fleet attaches its shared metrics before handing over).
  if (chunks_ != nullptr && (tracer_ != nullptr || metrics_ != nullptr)) {
    chunks_->set_observer(tracer_, metrics_);
  }
}

void Registry::set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (chunks_ != nullptr) chunks_->set_observer(tracer, metrics);
  if (metrics == nullptr) {
    pulls_ = pushes_ = gcs_ = fscks_ = pulled_bytes_ = pushed_bytes_ = nullptr;
    return;
  }
  pulls_ = &metrics->counter("registry.pulls");
  pushes_ = &metrics->counter("registry.pushes");
  gcs_ = &metrics->counter("registry.gcs");
  fscks_ = &metrics->counter("registry.fscks");
  pulled_bytes_ = &metrics->counter("registry.pulled_bytes");
  pushed_bytes_ = &metrics->counter("registry.pushed_bytes");
}

Status Registry::ingest_blob_locked(const oci::Layout& source, const oci::Descriptor& blob,
                                    const std::vector<std::string>& base_digests,
                                    ImageDeltaReport* report) {
  if (report != nullptr) ++report->blobs_total;
  if (store_.has_blob(blob.digest)) {
    // Whole-blob reuse is chunk reuse too: every chunk of a blob the
    // registry already holds was saved from the wire, and Stats should say
    // so even for plain push (the service's rebuild pushes live here).
    if (chunks_ != nullptr) {
      auto held_manifest = chunks_->manifest(blob.digest.value);
      if (held_manifest.ok()) {
        transfer_.chunks_reused += held_manifest.value().chunks.size();
        transfer_.chunk_bytes_deduped += held_manifest.value().total_size;
      } else {
        // A blob pushed before dedup was enabled has no manifest yet:
        // chunk it now so later pushes reuse it and delta pushes can name
        // the image it belongs to as a base.
        COMT_TRY(std::string held, store_.get_blob(blob.digest));
        COMT_TRY(transfer::ChunkManifest backfilled, chunks_->put_blob(held));
        (void)backfilled;
      }
    }
    if (report != nullptr) {
      COMT_TRY(std::string held, store_.get_blob(blob.digest));
      report->image_bytes += held.size();
      report->bytes_deduped += held.size();
      ++report->blobs_reused;
    }
    return Status::success();
  }
  COMT_TRY(std::string content, source.get_blob(blob.digest));
  std::uint64_t moved = content.size();
  if (chunks_ != nullptr) {
    // The chunk store is the distribution substrate: only the chunks it is
    // missing count as transferred, whatever the blob-level picture says.
    COMT_TRY(transfer::DeltaReport delta, transfer::push_delta(content, base_digests, *chunks_));
    moved = delta.bytes_moved;
    transfer_.chunk_bytes_moved += delta.bytes_moved;
    transfer_.chunk_bytes_deduped += delta.bytes_deduped;
    transfer_.chunks_moved += delta.chunks_moved;
    transfer_.chunks_reused += delta.chunks_reused;
    if (report != nullptr) {
      report->bytes_deduped += delta.bytes_deduped;
      report->chunks_moved += delta.chunks_moved;
      report->chunks_reused += delta.chunks_reused;
    }
  }
  if (report != nullptr) {
    ++report->blobs_moved;
    report->image_bytes += content.size();
    report->bytes_moved += moved;
  }
  transfer_.pushed_bytes += moved;
  store_.put_blob(std::move(content), blob.media_type);
  return Status::success();
}

Status Registry::push(const oci::Layout& source, std::string_view local_tag,
                      std::string_view name, std::string_view tag) {
  obs::Span span = obs::maybe_span(tracer_, "registry.push", obs::kNoSpan, "blob-push");
  span.annotate("image", make_reference(name, tag));
  if (faults_ != nullptr) COMT_TRY_STATUS(faults_->check(kPushFaultSite));
  COMT_TRY(oci::Image image, source.find_image(local_tag));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const std::uint64_t pushed_before = transfer_.pushed_bytes;
  COMT_TRY_STATUS(ingest_blob_locked(source, image.manifest.config, {}, nullptr));
  for (const oci::Descriptor& layer : image.manifest.layers) {
    COMT_TRY_STATUS(ingest_blob_locked(source, layer, {}, nullptr));
  }
  COMT_TRY(std::string manifest_blob, source.get_blob(image.manifest_digest));
  if (!store_.has_blob(image.manifest_digest)) transfer_.pushed_bytes += manifest_blob.size();
  store_.put_blob(std::move(manifest_blob), oci::kMediaTypeManifest);
  const std::string reference = make_reference(name, tag);
  references_[reference] = image.manifest_digest;
  // Mirror the reference into the store's index so oci::fsck on the backing
  // layout sees which blobs are reachable from which repository.
  store_.tag_manifest(reference, image.manifest_digest);
  if (pushes_ != nullptr) {
    pushes_->add();
    pushed_bytes_->add(transfer_.pushed_bytes - pushed_before);
  }
  span.annotate("bytes", transfer_.pushed_bytes - pushed_before);
  return Status::success();
}

Result<ImageDeltaReport> Registry::push_delta(const oci::Layout& source,
                                              std::string_view local_tag,
                                              std::string_view name, std::string_view tag,
                                              const std::vector<std::string>& base_references) {
  if (chunks_ == nullptr) {
    return make_error(Errc::unsupported, "registry: chunk dedup not enabled");
  }
  obs::Span span = obs::maybe_span(tracer_, "registry.push_delta", obs::kNoSpan, "blob-push");
  span.annotate("image", make_reference(name, tag));
  if (faults_ != nullptr) COMT_TRY_STATUS(faults_->check(kPushFaultSite));
  COMT_TRY(oci::Image image, source.find_image(local_tag));
  std::unique_lock<std::shared_mutex> lock(mutex_);

  // Resolve the named bases to their blob digests. A base that was never
  // pushed (or lost its manifest) is skipped; the per-chunk probes inside
  // transfer::push_delta keep the transfer correct regardless.
  std::vector<std::string> base_digests;
  bool any_base = false;
  for (const std::string& base : base_references) {
    auto it = references_.find(base);
    if (it == references_.end()) continue;
    auto base_image = store_.load_image(it->second);
    if (!base_image.ok()) continue;
    any_base = true;
    base_digests.push_back(base_image.value().manifest.config.digest.value);
    for (const oci::Descriptor& layer : base_image.value().manifest.layers) {
      base_digests.push_back(layer.digest.value);
    }
  }

  ImageDeltaReport report;
  report.reference = make_reference(name, tag);
  report.full_push = !any_base;
  const std::uint64_t pushed_before = transfer_.pushed_bytes;
  COMT_TRY_STATUS(ingest_blob_locked(source, image.manifest.config, base_digests, &report));
  for (const oci::Descriptor& layer : image.manifest.layers) {
    COMT_TRY_STATUS(ingest_blob_locked(source, layer, base_digests, &report));
  }
  COMT_TRY(std::string manifest_blob, source.get_blob(image.manifest_digest));
  ++report.blobs_total;
  report.image_bytes += manifest_blob.size();
  if (!store_.has_blob(image.manifest_digest)) {
    transfer_.pushed_bytes += manifest_blob.size();
    report.bytes_moved += manifest_blob.size();
    ++report.blobs_moved;
  } else {
    report.bytes_deduped += manifest_blob.size();
    ++report.blobs_reused;
  }
  store_.put_blob(std::move(manifest_blob), oci::kMediaTypeManifest);
  const std::string reference = make_reference(name, tag);
  references_[reference] = image.manifest_digest;
  store_.tag_manifest(reference, image.manifest_digest);
  if (pushes_ != nullptr) {
    pushes_->add();
    pushed_bytes_->add(transfer_.pushed_bytes - pushed_before);
  }
  span.annotate("bytes_moved", report.bytes_moved);
  span.annotate("bytes_deduped", report.bytes_deduped);
  span.annotate("full_push", report.full_push ? "true" : "false");
  return report;
}

Result<ImageDeltaReport> Registry::pull_delta(std::string_view name, std::string_view tag,
                                              oci::Layout& destination,
                                              std::string_view local_tag,
                                              transfer::ChunkStore* local_chunks) const {
  if (chunks_ == nullptr) {
    return make_error(Errc::unsupported, "registry: chunk dedup not enabled");
  }
  obs::Span span = obs::maybe_span(tracer_, "registry.pull_delta", obs::kNoSpan, "pull");
  span.annotate("image", make_reference(name, tag));
  if (faults_ != nullptr) COMT_TRY_STATUS(faults_->check(kPullFaultSite));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  COMT_TRY(oci::Image image, store_.load_image(it->second));

  ImageDeltaReport report;
  report.reference = make_reference(name, tag);
  const std::uint64_t pulled_before = transfer_.pulled_bytes;
  auto fetch = [&](const oci::Descriptor& blob) -> Status {
    ++report.blobs_total;
    if (destination.has_blob(blob.digest)) {
      COMT_TRY(std::string held, destination.get_blob(blob.digest));
      report.image_bytes += held.size();
      report.bytes_deduped += held.size();
      ++report.blobs_reused;
      return Status::success();
    }
    std::string content;
    if (local_chunks != nullptr && chunks_->contains_blob(blob.digest.value)) {
      COMT_TRY(transfer::DeltaReport delta,
               transfer::pull_delta(*chunks_, blob.digest.value, *local_chunks, &content));
      transfer_.pulled_bytes += delta.bytes_moved;
      transfer_.chunk_bytes_moved += delta.bytes_moved;
      transfer_.chunk_bytes_deduped += delta.bytes_deduped;
      transfer_.chunks_moved += delta.chunks_moved;
      transfer_.chunks_reused += delta.chunks_reused;
      report.bytes_moved += delta.bytes_moved;
      report.bytes_deduped += delta.bytes_deduped;
      report.chunks_moved += delta.chunks_moved;
      report.chunks_reused += delta.chunks_reused;
    } else if (chunks_->contains_blob(blob.digest.value)) {
      // No local chunk cache — reassemble at the source and move the blob
      // whole. Still digest-verified by get_blob.
      COMT_TRY(content, chunks_->get_blob(blob.digest.value));
      transfer_.pulled_bytes += content.size();
      report.bytes_moved += content.size();
    } else {
      COMT_TRY(content, store_.get_blob(blob.digest));
      transfer_.pulled_bytes += content.size();
      report.bytes_moved += content.size();
    }
    ++report.blobs_moved;
    report.image_bytes += content.size();
    destination.put_blob(std::move(content), blob.media_type);
    return Status::success();
  };
  COMT_TRY_STATUS(fetch(image.manifest.config));
  for (const oci::Descriptor& layer : image.manifest.layers) COMT_TRY_STATUS(fetch(layer));
  COMT_TRY(oci::Digest digest, destination.add_manifest(image.manifest, local_tag));
  (void)digest;
  if (pulls_ != nullptr) {
    pulls_->add();
    pulled_bytes_->add(transfer_.pulled_bytes - pulled_before);
  }
  span.annotate("bytes_moved", report.bytes_moved);
  span.annotate("bytes_deduped", report.bytes_deduped);
  return report;
}

Status Registry::pull(std::string_view name, std::string_view tag, oci::Layout& destination,
                      std::string_view local_tag) const {
  obs::Span span = obs::maybe_span(tracer_, "registry.pull", obs::kNoSpan, "pull");
  span.annotate("image", make_reference(name, tag));
  if (faults_ != nullptr) COMT_TRY_STATUS(faults_->check(kPullFaultSite));
  // Writer lock: pull reads the store but also updates the transfer counters.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  const std::uint64_t pulled_before = transfer_.pulled_bytes;
  COMT_TRY(oci::Image image, store_.load_image(it->second));
  COMT_TRY_STATUS(
      transfer_blob(store_, destination, image.manifest.config, transfer_.pulled_bytes));
  for (const oci::Descriptor& layer : image.manifest.layers) {
    COMT_TRY_STATUS(transfer_blob(store_, destination, layer, transfer_.pulled_bytes));
  }
  COMT_TRY(oci::Digest digest, destination.add_manifest(image.manifest, local_tag));
  (void)digest;
  if (pulls_ != nullptr) {
    pulls_->add();
    pulled_bytes_->add(transfer_.pulled_bytes - pulled_before);
  }
  span.annotate("bytes", transfer_.pulled_bytes - pulled_before);
  return Status::success();
}

bool Registry::has(std::string_view name, std::string_view tag) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return references_.count(make_reference(name, tag)) != 0;
}

Result<oci::Digest> Registry::resolve(std::string_view name, std::string_view tag) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  return it->second;
}

std::vector<std::string> Registry::list() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(references_.size());
  for (const auto& [reference, digest] : references_) out.push_back(reference);
  return out;
}

Status Registry::remove(std::string_view name, std::string_view tag) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  references_.erase(it);
  store_.remove_tag(make_reference(name, tag));
  return sweep_locked();
}

Status Registry::gc() {
  obs::Span span = obs::maybe_span(tracer_, "registry.gc", obs::kNoSpan, "registry");
  if (gcs_ != nullptr) gcs_->add();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return sweep_locked();
}

Status Registry::sweep_locked() {
  // Mark: everything any reference reaches stays.
  std::set<oci::Digest> reachable;
  for (const auto& [reference, digest] : references_) {
    COMT_TRY(oci::Image image, store_.load_image(digest));
    reachable.insert(digest);
    reachable.insert(image.manifest.config.digest);
    for (const oci::Descriptor& layer : image.manifest.layers) {
      reachable.insert(layer.digest);
    }
  }
  // Sweep: unreferenced, unpinned blobs are reclaimed and counted. A pinned
  // blob belongs to a live journaled rebuild — its resume still needs the
  // bytes even though no reference names them anymore.
  for (const oci::Digest& digest : store_.blob_digests()) {
    if (reachable.count(digest) != 0 || store_.is_pinned(digest)) continue;
    std::uint64_t freed = store_.remove_blob(digest);
    if (freed == 0) continue;
    transfer_.reclaimed_bytes += freed;
    ++transfer_.removed_blobs;
    // The chunk-level copy follows the blob out: chunks the manifest no
    // longer references (and nothing else does) are reclaimed too. A chunk
    // shared with a surviving blob's manifest keeps its refcount and stays.
    if (chunks_ != nullptr) {
      auto chunk_freed = chunks_->erase_blob(digest.value);
      if (chunk_freed.ok()) transfer_.reclaimed_bytes += chunk_freed.value();
    }
  }
  return Status::success();
}

Status Registry::pin(std::string_view name, std::string_view tag) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  COMT_TRY(oci::Image image, store_.load_image(it->second));
  store_.pin_blob(it->second);
  store_.pin_blob(image.manifest.config.digest);
  for (const oci::Descriptor& layer : image.manifest.layers) store_.pin_blob(layer.digest);
  if (chunks_ != nullptr) {
    chunks_->pin_blob(it->second.value);
    chunks_->pin_blob(image.manifest.config.digest.value);
    for (const oci::Descriptor& layer : image.manifest.layers) {
      chunks_->pin_blob(layer.digest.value);
    }
  }
  return Status::success();
}

Status Registry::unpin(std::string_view name, std::string_view tag) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  COMT_TRY(oci::Image image, store_.load_image(it->second));
  store_.unpin_blob(it->second);
  store_.unpin_blob(image.manifest.config.digest);
  for (const oci::Descriptor& layer : image.manifest.layers) store_.unpin_blob(layer.digest);
  if (chunks_ != nullptr) {
    chunks_->unpin_blob(it->second.value);
    chunks_->unpin_blob(image.manifest.config.digest.value);
    for (const oci::Descriptor& layer : image.manifest.layers) {
      chunks_->unpin_blob(layer.digest.value);
    }
  }
  return Status::success();
}

Result<std::string> Registry::fetch_blob(const oci::Digest& digest) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return store_.get_blob(digest);
}

oci::FsckReport Registry::fsck(bool repair, const oci::BlobFetcher& origin) {
  obs::Span span = obs::maybe_span(tracer_, "registry.fsck", obs::kNoSpan, "registry");
  span.annotate("repair", std::uint64_t{repair ? 1u : 0u});
  if (fscks_ != nullptr) fscks_->add();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!repair) return oci::fsck(store_);
  oci::FsckReport report = oci::fsck_repair(store_, origin);
  // Repair may have cut dangling tags from the store index; mirror that back
  // into the reference map so resolve()/pull() stop offering broken images.
  references_.clear();
  for (const auto& [reference, digest] : store_.index_entries()) {
    references_[reference] = digest;
  }
  return report;
}

Stats Registry::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  Stats out = transfer_;
  out.repositories = references_.size();
  out.blobs = store_.blob_count();
  out.stored_bytes = store_.total_blob_bytes();
  return out;
}

}  // namespace comt::registry
