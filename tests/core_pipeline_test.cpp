// Front-end, cache storage and back-end, exercised against a real prepared
// application (lulesh) in a shared fixture.
#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/cache.hpp"
#include "core/frontend.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt::core {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new workloads::Evaluation(sysmodel::SystemProfile::x86_cluster());
    app_ = workloads::find_app("lulesh");
    ASSERT_NE(app_, nullptr);
    auto prepared = world_->prepare(*app_);
    ASSERT_TRUE(prepared.ok()) << prepared.error().to_string();
    prepared_ = new workloads::PreparedApp(prepared.value());
  }
  static void TearDownTestSuite() {
    delete prepared_;
    delete world_;
    world_ = nullptr;
    prepared_ = nullptr;
  }

  static workloads::Evaluation* world_;
  static const workloads::AppSpec* app_;
  static workloads::PreparedApp* prepared_;
};

workloads::Evaluation* PipelineFixture::world_ = nullptr;
const workloads::AppSpec* PipelineFixture::app_ = nullptr;
workloads::PreparedApp* PipelineFixture::prepared_ = nullptr;

TEST_F(PipelineFixture, ExtendedImagePreservesOriginal) {
  auto dist = world_->layout().find_image(prepared_->dist_tag);
  auto extended = world_->layout().find_image(prepared_->extended_tag);
  ASSERT_TRUE(dist.ok());
  ASSERT_TRUE(extended.ok());
  // Extended = original layers + exactly one cache layer; the original's
  // layers are untouched (OCI layering, §4.5).
  ASSERT_EQ(extended.value().manifest.layers.size(),
            dist.value().manifest.layers.size() + 1);
  for (std::size_t i = 0; i < dist.value().manifest.layers.size(); ++i) {
    EXPECT_EQ(extended.value().manifest.layers[i].digest,
              dist.value().manifest.layers[i].digest);
  }
  EXPECT_TRUE(world_->layout().fsck().ok());
}

TEST_F(PipelineFixture, CacheBundleRoundTrips) {
  auto extended = world_->layout().find_image(prepared_->extended_tag);
  ASSERT_TRUE(extended.ok());
  auto rootfs = world_->layout().flatten(extended.value());
  ASSERT_TRUE(rootfs.ok());
  auto bundle = load_cache(rootfs.value());
  ASSERT_TRUE(bundle.ok()) << bundle.error().to_string();

  // The graph knows the sources, objects, archive and the executable.
  const BuildGraph& graph = bundle.value().models.graph;
  EXPECT_GE(graph.size(), 5u);
  bool saw_exe = false, saw_object = false, saw_source = false;
  for (const GraphNode& node : graph.nodes()) {
    saw_exe |= node.kind == NodeKind::executable;
    saw_object |= node.kind == NodeKind::object;
    saw_source |= node.kind == NodeKind::source;
  }
  EXPECT_TRUE(saw_exe);
  EXPECT_TRUE(saw_object);
  EXPECT_TRUE(saw_source);
  ASSERT_TRUE(graph.topological_order().ok());

  // Every source the graph references is in the cache, content-verified.
  for (const GraphNode& node : graph.nodes()) {
    if (node.is_leaf() && !node.content_digest.empty() &&
        node.path.find("/usr/lib/") == std::string::npos) {
      EXPECT_EQ(bundle.value().sources.count(node.content_digest), 1u) << node.path;
    }
  }
}

TEST_F(PipelineFixture, CacheExcludesPackageOwnedInputs) {
  auto extended = world_->layout().find_image(prepared_->extended_tag);
  auto rootfs = world_->layout().flatten(extended.value());
  auto bundle = load_cache(rootfs.value());
  ASSERT_TRUE(bundle.ok());
  // System libraries read at link time must NOT be shipped in the cache —
  // the target system substitutes its own (that is the whole point).
  for (const auto& [digest, content] : bundle.value().sources) {
    EXPECT_FALSE(toolchain::is_image_blob(content)) << "library blob leaked into cache";
  }
}

TEST_F(PipelineFixture, ImageModelClassifiesAllOrigins) {
  auto extended = world_->layout().find_image(prepared_->extended_tag);
  auto rootfs = world_->layout().flatten(extended.value());
  auto bundle = load_cache(rootfs.value());
  ASSERT_TRUE(bundle.ok());
  const ImageModel& model = bundle.value().models.image;
  auto histogram = model.origin_histogram();
  EXPECT_GT(histogram[FileOrigin::base_image], 0u);
  EXPECT_GT(histogram[FileOrigin::package_manager], 0u);
  EXPECT_GT(histogram[FileOrigin::build_process], 0u);
  // The application binary is a build product tied to a graph node.
  bool found_binary = false;
  for (const ImageFileEntry& entry : model.files) {
    if (entry.path == app_->binary_path()) {
      found_binary = true;
      EXPECT_EQ(entry.origin, FileOrigin::build_process);
      EXPECT_GE(entry.build_node, 0);
    }
  }
  EXPECT_TRUE(found_binary);
  // Runtime packages recorded with their variants.
  EXPECT_FALSE(model.runtime_packages.empty());
  for (const RuntimePackage& package : model.runtime_packages) {
    EXPECT_EQ(package.variant, "generic");
  }
}

TEST_F(PipelineFixture, RebuildProducesRebuiltImage) {
  auto owned = adapted_scheme();
  std::vector<const SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  RebuildOptions options;
  options.system = &world_->system();
  options.system_repo = &workloads::system_repo(world_->system());
  options.sysenv_tag = workloads::sysenv_tag(world_->system());
  options.adapters = adapters;
  auto report = comtainer_rebuild(world_->layout(), prepared_->extended_tag, options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().nodes_executed, 0u);
  EXPECT_GT(report.value().files_rebuilt, 0u);
  EXPECT_FALSE(report.value().profile_feedback);
  EXPECT_FALSE(report.value().package_replacements.empty());
  // The rebuilt image carries one more layer than the extended image.
  auto extended = world_->layout().find_image(prepared_->extended_tag);
  EXPECT_EQ(report.value().image.manifest.layers.size(),
            extended.value().manifest.layers.size() + 1);
  // Tagged with the +coMre suffix, like the artifact's index.json.
  auto rebuilt = world_->layout().find_image("lulesh.dist+coMre");
  EXPECT_TRUE(rebuilt.ok());
}

TEST_F(PipelineFixture, RedirectBuildsOptimizedImage) {
  // Self-contained: run the adapted rebuild first (ctest executes each test
  // in its own process, so no state carries over between tests).
  auto owned = adapted_scheme();
  std::vector<const SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  RebuildOptions rebuild_options;
  rebuild_options.system = &world_->system();
  rebuild_options.system_repo = &workloads::system_repo(world_->system());
  rebuild_options.sysenv_tag = workloads::sysenv_tag(world_->system());
  rebuild_options.adapters = adapters;
  ASSERT_TRUE(
      comtainer_rebuild(world_->layout(), prepared_->extended_tag, rebuild_options).ok());

  RedirectOptions options;
  options.system = &world_->system();
  options.system_repo = &workloads::system_repo(world_->system());
  options.rebase_tag = workloads::rebase_tag(world_->system());
  auto report = comtainer_redirect(world_->layout(), "lulesh.dist+coMre", options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().packages_installed, 0u);
  EXPECT_GT(report.value().files_from_rebuild, 0u);

  auto optimized = world_->layout().find_image("lulesh.dist+opt");
  ASSERT_TRUE(optimized.ok());
  auto rootfs = world_->layout().flatten(optimized.value());
  ASSERT_TRUE(rootfs.ok());
  // Runtime deps replaced by optimized variants.
  auto db = pkg::Database::load(rootfs.value());
  ASSERT_TRUE(db.ok());
  const pkg::InstalledPackage* mpi = db.value().find("mpich");
  ASSERT_NE(mpi, nullptr);
  EXPECT_EQ(mpi->variant, pkg::Variant::optimized);
  // The app binary is the rebuilt one (native toolchain).
  auto blob = rootfs.value().read_file(app_->binary_path());
  ASSERT_TRUE(blob.ok());
  auto image = toolchain::parse_image(blob.value());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().codegen.toolchain_id, "vendor-x86");
  // And the optimized image keeps the original entrypoint.
  EXPECT_EQ(optimized.value().config.config.entrypoint,
            std::vector<std::string>{app_->binary_path()});
}

TEST_F(PipelineFixture, PgoFeedbackLoopRuns) {
  auto owned = optimized_scheme();
  std::vector<const SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  RebuildOptions options;
  options.system = &world_->system();
  options.system_repo = &workloads::system_repo(world_->system());
  options.sysenv_tag = workloads::sysenv_tag(world_->system());
  options.adapters = adapters;
  options.profile_run = app_->inputs.front().run_request(1);
  auto report = comtainer_rebuild(world_->layout(), prepared_->extended_tag, options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().profile_feedback);

  // The final binary is LTO'd, profile-trained, and NOT instrumented.
  RedirectOptions redirect;
  redirect.system = &world_->system();
  redirect.system_repo = &workloads::system_repo(world_->system());
  redirect.rebase_tag = workloads::rebase_tag(world_->system());
  auto redirected = comtainer_redirect(world_->layout(), "lulesh.dist+coMre", redirect);
  ASSERT_TRUE(redirected.ok());
  auto rootfs = world_->layout().flatten(redirected.value().image);
  auto blob = rootfs.value().read_file(app_->binary_path());
  ASSERT_TRUE(blob.ok());
  auto image = toolchain::parse_image(blob.value());
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(image.value().codegen.lto_applied);
  EXPECT_FALSE(image.value().codegen.pgo_instrumented);
  EXPECT_GT(image.value().codegen.pgo_quality, 0.5);
}

TEST_F(PipelineFixture, RedirectOnlyFlowReplacesPackagesWithoutRebuild) {
  auto tag = world_->redirect_only(*app_, *prepared_);
  ASSERT_TRUE(tag.ok()) << tag.error().to_string();
  auto optimized = world_->layout().find_image(tag.value());
  ASSERT_TRUE(optimized.ok());
  auto rootfs = world_->layout().flatten(optimized.value());
  // Binary is still the ORIGINAL generic build...
  auto blob = rootfs.value().read_file(app_->binary_path());
  ASSERT_TRUE(blob.ok());
  auto image = toolchain::parse_image(blob.value());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().codegen.toolchain_id, "gnu-generic");
  // ...but the libraries are the system's optimized ones (the libo rung).
  auto db = pkg::Database::load(rootfs.value());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().find("libm")->variant, pkg::Variant::optimized);
}

TEST(BackendErrorsTest, RebuildRequiresExtendedImage) {
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const workloads::AppSpec* app = workloads::find_app("hpccg");
  ASSERT_NE(app, nullptr);
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  RebuildOptions options;
  options.system = &world.system();
  options.system_repo = &workloads::system_repo(world.system());
  options.sysenv_tag = workloads::sysenv_tag(world.system());
  // Pointing at the plain dist image (no cache layer) must fail cleanly.
  auto report = comtainer_rebuild(world.layout(), prepared.value().dist_tag, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::not_found);
}

TEST(BackendErrorsTest, MissingOptionsRejected) {
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  RebuildOptions no_system;
  EXPECT_FALSE(comtainer_rebuild(world.layout(), "x", no_system).ok());
  RedirectOptions no_repo;
  EXPECT_FALSE(comtainer_redirect(world.layout(), "x", no_repo).ok());
}

TEST(BackendTest, BaseTagStripping) {
  EXPECT_EQ(base_tag_of("app.dist+coM"), "app.dist");
  EXPECT_EQ(base_tag_of("app.dist+coMre"), "app.dist");
  EXPECT_EQ(base_tag_of("app.dist+opt"), "app.dist");
  EXPECT_EQ(base_tag_of("app.dist"), "app.dist");
}

TEST(FrontendTest, GraphFromRecordHandlesFailuresAndCopies) {
  buildexec::BuildRecord record;
  buildexec::ToolInvocation failed;
  failed.argv = {"gcc", "-c", "broken.cc"};
  failed.succeeded = false;
  record.invocations.push_back(failed);
  buildexec::ToolInvocation copy;
  copy.argv = {std::string(buildexec::kCopyPseudoTool), "--from=build", "/a"};
  record.invocations.push_back(copy);
  buildexec::ToolInvocation untracked;
  untracked.argv = {"mkdir", "-p", "/x"};
  record.invocations.push_back(untracked);

  auto graph = build_graph_from_record(record);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().size(), 0u);  // nothing graph-worthy happened
}

TEST(FrontendTest, SharedInputsCreateSharedNodes) {
  buildexec::BuildRecord record;
  buildexec::ToolInvocation first;
  first.argv = {"gcc", "-c", "a.cc", "-o", "a.o"};
  first.inputs_read = {"/w/a.cc", "/w/common.h"};
  first.outputs = {"/w/a.o"};
  first.digests = {{"/w/a.cc", "da"}, {"/w/common.h", "dh"}, {"/w/a.o", "doa"}};
  record.invocations.push_back(first);
  buildexec::ToolInvocation second;
  second.argv = {"gcc", "-c", "b.cc", "-o", "b.o"};
  second.inputs_read = {"/w/b.cc", "/w/common.h"};
  second.outputs = {"/w/b.o"};
  second.digests = {{"/w/b.cc", "db"}, {"/w/common.h", "dh"}, {"/w/b.o", "dob"}};
  record.invocations.push_back(second);

  auto graph = build_graph_from_record(record);
  ASSERT_TRUE(graph.ok());
  // a.cc, common.h, a.o, b.cc, b.o — common.h node is shared, not duplicated.
  EXPECT_EQ(graph.value().size(), 5u);
  int header = graph.value().find_by_digest("dh");
  ASSERT_GE(header, 0);
  int a_o = graph.value().find_by_digest("doa");
  int b_o = graph.value().find_by_digest("dob");
  auto contains = [&](int node, int dep) {
    const auto& deps = graph.value().node(node).deps;
    return std::find(deps.begin(), deps.end(), dep) != deps.end();
  };
  EXPECT_TRUE(contains(a_o, header));
  EXPECT_TRUE(contains(b_o, header));
}

}  // namespace
}  // namespace comt::core
