#include "sched/compile_cache.hpp"

#include <optional>

#include "store/wire.hpp"
#include "support/sha256.hpp"

namespace comt::sched {
namespace {

namespace wire = comt::store::wire;

void append_field(std::string& buffer, const std::string& field) {
  buffer += std::to_string(field.size());
  buffer += ':';
  buffer += field;
}

/// Persisted entry layout: [u32 n_inputs] n×(str path, str digest)
/// [u32 n_outputs] n×(str path, str content, u32 mode), followed by the
/// 64-hex-char sha256 of everything before it. The trailer makes corruption
/// detectable end-to-end even on a backing store without its own framing —
/// a damaged entry must degrade to a miss, never replay wrong outputs.
constexpr std::size_t kEntryTrailerSize = 64;

std::string serialize_entry(const CacheEntry& entry) {
  std::string out;
  wire::put_u32(out, static_cast<std::uint32_t>(entry.input_digests.size()));
  for (const auto& [path, digest] : entry.input_digests) {
    wire::put_str(out, path);
    wire::put_str(out, digest);
  }
  wire::put_u32(out, static_cast<std::uint32_t>(entry.outputs.size()));
  for (const CachedOutput& output : entry.outputs) {
    wire::put_str(out, output.path);
    wire::put_str(out, output.content);
    wire::put_u32(out, output.mode);
  }
  out += Sha256::hex_digest(out);
  return out;
}

std::optional<CacheEntry> deserialize_entry(std::string_view encoded) {
  if (encoded.size() < kEntryTrailerSize) return std::nullopt;
  const std::string_view payload = encoded.substr(0, encoded.size() - kEntryTrailerSize);
  const std::string_view trailer = encoded.substr(encoded.size() - kEntryTrailerSize);
  if (Sha256::hex_digest(payload) != trailer) return std::nullopt;
  wire::Reader reader{payload};
  CacheEntry entry;
  const std::uint32_t inputs = reader.u32();
  for (std::uint32_t i = 0; i < inputs && reader.ok; ++i) {
    std::string path = reader.str();
    std::string digest = reader.str();
    entry.input_digests.emplace(std::move(path), std::move(digest));
  }
  const std::uint32_t outputs = reader.u32();
  for (std::uint32_t i = 0; i < outputs && reader.ok; ++i) {
    CachedOutput output;
    output.path = reader.str();
    output.content = reader.str();
    output.mode = reader.u32();
    entry.outputs.push_back(std::move(output));
  }
  if (!reader.ok || !reader.at_end()) return std::nullopt;
  return entry;
}

}  // namespace

std::string CacheKey::digest() const {
  std::string buffer;
  append_field(buffer, toolchain_id);
  append_field(buffer, target_arch);
  append_field(buffer, cwd);
  buffer += std::to_string(argv.size());
  buffer += ';';
  for (const std::string& arg : argv) append_field(buffer, arg);
  return Sha256::hex_digest(buffer);
}

std::uint64_t CompileCache::next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::shared_ptr<const CompileCache::EntryMap> CompileCache::snapshot() const {
  struct TlsSnapshot {
    std::uint64_t instance = 0;  // instance ids are unique for the process
    std::uint64_t version = 0;
    std::shared_ptr<const EntryMap> map;
  };
  thread_local TlsSnapshot tls;
  // Steady state (nobody stored since this thread last looked): one acquire
  // load, no lock, no shared write. The cached map is immutable, so reading
  // it is race-free even while a writer prepares the next snapshot.
  const std::uint64_t version = version_.load(std::memory_order_acquire);
  if (tls.instance == instance_id_ && tls.version == version) return tls.map;
  std::lock_guard<std::mutex> lock(mutex_);
  tls.instance = instance_id_;
  tls.version = version_.load(std::memory_order_relaxed);
  tls.map = published_;
  return tls.map;
}

std::shared_ptr<const CacheEntry> CompileCache::fetch_remote(
    const std::string& key_digest) const {
  std::shared_ptr<store::KvStore> backing;
  std::string backing_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    backing = backing_;
    backing_key = prefix_ + key_digest;
  }
  if (backing == nullptr) return nullptr;
  auto value = backing->get(backing_key);
  if (!value.ok()) return nullptr;
  std::optional<CacheEntry> entry = deserialize_entry(value.value());
  if (!entry.has_value()) return nullptr;  // torn/corrupt: degrade to a miss
  auto shared = std::make_shared<const CacheEntry>(std::move(*entry));
  // Adopt the entry locally so the next lookup hits without the round trip.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<EntryMap>(*published_);
    (*next)[key_digest] = shared;
    published_ = std::move(next);
    version_.fetch_add(1, std::memory_order_release);
  }
  return shared;
}

std::shared_ptr<const CacheEntry> CompileCache::lookup(const std::string& key_digest,
                                                       const DigestFn& digest_of) const {
  const std::shared_ptr<const EntryMap> view = snapshot();
  std::shared_ptr<const CacheEntry> candidate;
  auto found = view->find(key_digest);
  if (found != view->end()) candidate = found->second;
  // Local miss → ask the backing store before giving up: another replica
  // sharing the backing may have compiled this already.
  bool from_remote = false;
  if (!candidate) {
    candidate = fetch_remote(key_digest);
    from_remote = candidate != nullptr;
  }
  // Verify the input manifest — digest_of may do real work, all lock-free.
  if (candidate) {
    for (const auto& [path, digest] : candidate->input_digests) {
      if (digest_of(path) != digest) {
        candidate = nullptr;
        break;
      }
    }
  }
  if (candidate) {
    hit_count_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter* hits = hits_.load(std::memory_order_acquire)) hits->add();
    if (from_remote) {
      remote_hit_count_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Counter* remote = remote_hits_.load(std::memory_order_acquire)) {
        remote->add();
      }
    }
  } else {
    miss_count_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter* misses = misses_.load(std::memory_order_acquire)) {
      misses->add();
    }
  }
  return candidate;
}

void CompileCache::store(const std::string& key_digest, CacheEntry entry) {
  auto shared = std::make_shared<const CacheEntry>(std::move(entry));
  std::shared_ptr<store::KvStore> backing;
  std::string backing_key;
  {
    // Copy-update-republish under the writer mutex; the version bump tells
    // readers their thread-local snapshot is stale. Concurrent lookups keep
    // reading the old snapshot until they observe the new version.
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<EntryMap>(*published_);
    (*next)[key_digest] = shared;
    published_ = std::move(next);
    version_.fetch_add(1, std::memory_order_release);
    store_count_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter* inserts = inserts_.load(std::memory_order_acquire)) {
      inserts->add();
    }
    backing = backing_;
    backing_key = prefix_ + key_digest;
  }
  // Write through outside the lock: serialization copies the (possibly
  // large) outputs and the backing put may hit a real disk. Best effort — a
  // failed put only costs the next process a cache miss.
  if (backing != nullptr) (void)backing->put(backing_key, serialize_entry(*shared));
}

std::size_t CompileCache::attach(std::shared_ptr<store::KvStore> backing,
                                 std::string prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  backing_ = std::move(backing);
  prefix_ = std::move(prefix);
  if (backing_ == nullptr) return 0;
  auto next = std::make_shared<EntryMap>(*published_);
  std::size_t recovered = 0;
  for (const store::KvEntry& persisted : backing_->list(prefix_)) {
    const std::string key = persisted.key.substr(prefix_.size());
    auto value = backing_->get(persisted.key);
    std::optional<CacheEntry> entry;
    if (value.ok()) entry = deserialize_entry(value.value());
    if (!entry.has_value()) {
      // Torn, bit-flipped, or truncated on disk: erase it so the next
      // attach does not re-trip, and degrade to a miss.
      (void)backing_->erase(persisted.key);
      corrupt_count_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Counter* corrupt = corrupt_dropped_.load(std::memory_order_acquire)) {
        corrupt->add();
      }
      continue;
    }
    (*next)[key] = std::make_shared<const CacheEntry>(std::move(*entry));
    hydrated_count_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter* hydrated = hydrated_.load(std::memory_order_acquire)) {
      hydrated->add();
    }
    ++recovered;
  }
  published_ = std::move(next);
  version_.fetch_add(1, std::memory_order_release);
  return recovered;
}

void CompileCache::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (metrics == nullptr) {
    hits_.store(nullptr, std::memory_order_release);
    misses_.store(nullptr, std::memory_order_release);
    remote_hits_.store(nullptr, std::memory_order_release);
    inserts_.store(nullptr, std::memory_order_release);
    hydrated_.store(nullptr, std::memory_order_release);
    corrupt_dropped_.store(nullptr, std::memory_order_release);
    return;
  }
  hits_.store(&metrics->counter("compile_cache.hits"), std::memory_order_release);
  misses_.store(&metrics->counter("compile_cache.misses"), std::memory_order_release);
  remote_hits_.store(&metrics->counter("compile_cache.remote_hits"),
                     std::memory_order_release);
  inserts_.store(&metrics->counter("compile_cache.inserts"),
                 std::memory_order_release);
  hydrated_.store(&metrics->counter("compile_cache.hydrated"),
                  std::memory_order_release);
  corrupt_dropped_.store(&metrics->counter("compile_cache.corrupt_dropped"),
                         std::memory_order_release);
}

CacheStats CompileCache::stats() const {
  CacheStats out;
  out.hits = hit_count_.load(std::memory_order_relaxed);
  out.misses = miss_count_.load(std::memory_order_relaxed);
  out.stores = store_count_.load(std::memory_order_relaxed);
  out.hydrated = hydrated_count_.load(std::memory_order_relaxed);
  out.corrupt_dropped = corrupt_count_.load(std::memory_order_relaxed);
  out.remote_hits = remote_hit_count_.load(std::memory_order_relaxed);
  return out;
}

std::size_t CompileCache::size() const { return snapshot()->size(); }

}  // namespace comt::sched
