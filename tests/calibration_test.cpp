// Calibration regression guard: pins the evaluation's headline aggregates to
// the ranges EXPERIMENTS.md documents, so model or corpus edits that silently
// break the paper-shape reproduction fail loudly here rather than being
// discovered in a bench printout.
#include <gtest/gtest.h>

#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

struct FleetNumbers {
  double mean_improvement = 0;  // native vs original, percent
  double native_avg = 0;
  std::map<std::string, workloads::SchemeTimes> rows;
};

FleetNumbers measure(const sysmodel::SystemProfile& system) {
  FleetNumbers numbers;
  workloads::Evaluation world(system);
  double sum_improvement = 0, sum_native = 0;
  int count = 0;
  for (const workloads::AppSpec& app : workloads::corpus()) {
    auto prepared = world.prepare(app);
    EXPECT_TRUE(prepared.ok()) << app.name;
    if (!prepared.ok()) continue;
    for (const workloads::WorkloadInput& input : app.inputs) {
      auto times = world.run_schemes(app, prepared.value(), input, system.nodes);
      EXPECT_TRUE(times.ok()) << input.display_name(app.name);
      if (!times.ok()) continue;
      sum_improvement +=
          (times.value().original / times.value().native - 1.0) * 100.0;
      sum_native += times.value().native;
      numbers.rows[input.display_name(app.name)] = times.value();
      ++count;
    }
  }
  numbers.mean_improvement = sum_improvement / count;
  numbers.native_avg = sum_native / count;
  return numbers;
}

TEST(CalibrationTest, X86FleetAggregates) {
  FleetNumbers x86 = measure(sysmodel::SystemProfile::x86_cluster());
  // Paper: +96.3 % mean improvement, 21.35 s native average.
  EXPECT_GT(x86.mean_improvement, 80.0);
  EXPECT_LT(x86.mean_improvement, 115.0);
  EXPECT_GT(x86.native_avg, 15.0);
  EXPECT_LT(x86.native_avg, 28.0);
  // hpccg is the lone native regression (paper §5.2).
  EXPECT_LT(x86.rows.at("hpccg").original, x86.rows.at("hpccg").native);
  int regressions = 0;
  for (const auto& [name, times] : x86.rows) {
    regressions += times.native > times.original;
  }
  EXPECT_EQ(regressions, 1);
  // The large applications show the biggest wins (paper: lammps, openmx).
  double eam_gain = x86.rows.at("lammps.eam").original / x86.rows.at("lammps.eam").native;
  EXPECT_GT(eam_gain, 2.5);  // paper callout: up to +253 %
  // Fig. 10 winners/losers.
  const auto& pt13 = x86.rows.at("openmx.pt13");
  EXPECT_LT(pt13.optimized, pt13.adapted * 0.85);
  const auto& chain = x86.rows.at("lammps.chain");
  EXPECT_GT(chain.optimized, chain.adapted * 1.05);
}

TEST(CalibrationTest, Aarch64FleetAggregates) {
  FleetNumbers arm = measure(sysmodel::SystemProfile::aarch64_cluster());
  // Paper: +66.5 % mean improvement, 67.0 s native average.
  EXPECT_GT(arm.mean_improvement, 60.0);
  EXPECT_LT(arm.mean_improvement, 125.0);
  EXPECT_GT(arm.native_avg, 50.0);
  EXPECT_LT(arm.native_avg, 85.0);
  // lulesh collapses without the fabric plugin (paper: +231 %).
  double lulesh_gain = arm.rows.at("lulesh").original / arm.rows.at("lulesh").native;
  EXPECT_GT(lulesh_gain, 2.8);
  EXPECT_LT(lulesh_gain, 4.0);
  // Its communication explanation: the x86 ratio is far smaller.
  FleetNumbers x86 = measure(sysmodel::SystemProfile::x86_cluster());
  double x86_gain = x86.rows.at("lulesh").original / x86.rows.at("lulesh").native;
  EXPECT_LT(x86_gain, 1.5);
  // Fig. 10b's lj gain.
  const auto& lj = arm.rows.at("lammps.lj");
  EXPECT_LT(lj.optimized, lj.adapted * 0.9);
}

TEST(CalibrationTest, AdaptedMatchesNativeEverywhere) {
  FleetNumbers x86 = measure(sysmodel::SystemProfile::x86_cluster());
  for (const auto& [name, times] : x86.rows) {
    EXPECT_NEAR(times.adapted / times.native, 1.0, 0.02) << name;
  }
}

}  // namespace
}  // namespace comt
